"""Performance: temporal reconstruction over a deep release history.

Gates the checkpointing tentpole's promise: loading a version from a
delta chain ``>= 50`` releases deep through the nearest checkpoint must
beat a full replay from v1, with byte-identical output either way.
Also measures the timeline scan (per-AS trajectory without
materializing any dataset) and churn analytics over the same store.
Numbers land in ``BENCH_history.json`` at the repo root (CI uploads it
as an artifact); ``REPRO_BENCH_ROUNDS`` shrinks the measurement for
smoke runs like every other bench.

The store here is synthetic — reconstruction speed is about the delta
chain, not classifier quality — so records are built directly and each
release churns ~10% of them.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import (
    ASdbDataset,
    ASdbRecord,
    ReleaseHistory,
    SnapshotStore,
    Stage,
    dataset_to_json,
)
from repro.reporting import render_table
from repro.taxonomy import LabelSet

BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "3")))

#: Depth of the release history (acceptance floor: >= 50 versions).
#: Chosen so the latest version is NOT itself a checkpoint — the
#: checkpointed path still replays a few deltas, the honest case.
VERSIONS = 61

#: Checkpoint cadence: the checkpointed path replays at most
#: ``CHECKPOINT_EVERY`` deltas where full replay walks the whole chain.
CHECKPOINT_EVERY = 8

#: ASes in every release; ~10% churn per release.
N_ASNS = 250
CHURN_PER_VERSION = 25

#: The checkpointed load must beat full replay by at least this factor
#: at depth ``VERSIONS`` — conservative: the asymptotic gap is
#: O(K) vs O(N) deltas, this only catches the optimization being
#: disconnected.
MIN_SPEEDUP = 1.2

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_history.json"

_SLUGS = ("isp", "hosting", "streaming", "banks", "insurance")


def _record_bench(key, payload):
    """Merge one benchmark's numbers into ``BENCH_history.json``."""
    document = {}
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    document[key] = payload
    BENCH_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


def _record(asn, revision):
    slug = _SLUGS[(asn + revision) % len(_SLUGS)]
    return ASdbRecord(
        asn=asn,
        labels=LabelSet.from_layer2_slugs([slug]),
        stage=Stage.ONE_SOURCE,
        domain=f"as{asn}-r{revision}.example",
    )


def _dataset(revisions):
    dataset = ASdbDataset()
    for asn in range(1, N_ASNS + 1):
        dataset.add(_record(asn, revisions[asn]))
    return dataset


@pytest.fixture(scope="module")
def deep_store(tmp_path_factory):
    """A snapshot store ``VERSIONS`` releases deep with rolling churn."""
    root = tmp_path_factory.mktemp("history") / "releases"
    store = SnapshotStore(root, checkpoint_every=CHECKPOINT_EVERY)
    revisions = {asn: 0 for asn in range(1, N_ASNS + 1)}
    for version in range(VERSIONS):
        if version:
            start = (version * CHURN_PER_VERSION) % N_ASNS
            for offset in range(CHURN_PER_VERSION):
                asn = 1 + (start + offset) % N_ASNS
                revisions[asn] += 1
        store.save(
            _dataset(revisions),
            window=(version * 30 - 30, version * 30),
        )
    return store


def _best_of(rounds, func):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_perf_checkpointed_reconstruction(deep_store, report):
    latest = len(deep_store)
    assert latest >= 50

    t_ckpt, fast = _best_of(
        BENCH_ROUNDS, lambda: deep_store.load(latest)
    )
    t_full, slow = _best_of(
        BENCH_ROUNDS,
        lambda: deep_store.load(latest, use_checkpoints=False),
    )
    # Acceptance: digest-verified (load raises otherwise) AND
    # byte-identical whichever path reconstructed the dataset.
    assert dataset_to_json(fast) == dataset_to_json(slow)

    speedup = t_full / t_ckpt if t_ckpt else float("inf")
    deltas_ckpt = (latest - 1) % CHECKPOINT_EVERY
    payload = {
        "versions": latest,
        "records": N_ASNS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "deltas_replayed_checkpointed": deltas_ckpt,
        "deltas_replayed_full": latest - 1,
        "load_checkpointed_seconds": round(t_ckpt, 6),
        "load_full_replay_seconds": round(t_full, 6),
        "speedup": round(speedup, 2),
        "rounds": BENCH_ROUNDS,
    }
    _record_bench("reconstruction", payload)
    report("history_reconstruction", render_table(
        ["Path", "Deltas replayed", "Best-of seconds"],
        [
            ["checkpointed", str(deltas_ckpt), f"{t_ckpt:.4f}"],
            ["full replay", str(latest - 1), f"{t_full:.4f}"],
            ["speedup", "", f"{speedup:.2f}x"],
        ],
        title=f"as-of reconstruction at depth {latest} "
              f"(K={CHECKPOINT_EVERY})",
    ))
    assert t_ckpt * MIN_SPEEDUP <= t_full, (
        f"checkpointed load ({t_ckpt:.4f}s) must beat full replay "
        f"({t_full:.4f}s) by >= {MIN_SPEEDUP}x at depth {latest}"
    )


def test_perf_timeline_scan(deep_store, report):
    history = ReleaseHistory(deep_store)

    t_bulk, timelines = _best_of(BENCH_ROUNDS, history.timelines)
    assert len(timelines) == N_ASNS
    events = sum(len(trajectory) for trajectory in timelines.values())

    t_churn, churn = _best_of(
        BENCH_ROUNDS,
        lambda: history.churn(len(deep_store) - 1, len(deep_store)),
    )
    # Slug rotation keeps some churned records inside their layer-1
    # category, so the category-level change count is a subset of the
    # churned set.
    assert 0 < churn.changed <= CHURN_PER_VERSION

    payload = {
        "versions": len(deep_store),
        "asns": N_ASNS,
        "timeline_events": events,
        "timelines_seconds": round(t_bulk, 6),
        "churn_seconds": round(t_churn, 6),
        "rounds": BENCH_ROUNDS,
    }
    _record_bench("timeline", payload)
    report("history_timeline", render_table(
        ["Query", "Output", "Best-of seconds"],
        [
            ["timelines()", f"{events} events", f"{t_bulk:.4f}"],
            ["churn(latest-1, latest)",
             f"{churn.changed} changed", f"{t_churn:.4f}"],
        ],
        title=f"temporal analytics over {len(deep_store)} releases",
    ))
    # Floor only: the scan walks the delta chain once, so it must stay
    # well under a per-version materialization (~seconds at this size).
    assert t_bulk < 10.0
    assert t_churn < 10.0
