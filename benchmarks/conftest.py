"""Shared benchmark fixtures: one calibrated world + trained system.

Every table/figure benchmark runs against the same session-scoped world
(so cross-table numbers are consistent, like the paper's), and registers
its rendered output with ``report`` so the reproduced tables are printed
in the terminal summary (pytest captures ordinary stdout).
"""

import random
from pathlib import Path

import pytest

from repro import SystemConfig, build_asdb
from repro.evaluation import (
    build_gold_standard,
    build_test_set,
    build_uniform_gold_standard,
)
from repro.world import WorldConfig, generate_world

#: World size for the benchmark universe.  Big enough that the Uniform
#: Gold Standard finds ASes in every layer 1 category.
BENCH_WORLD_ORGS = 1400
BENCH_SEED = 20211102

_RESULTS = []
_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_world():
    return generate_world(
        WorldConfig(n_orgs=BENCH_WORLD_ORGS, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def gold_standard(bench_world):
    return build_gold_standard(bench_world, size=150, seed=0)


@pytest.fixture(scope="session")
def test_set(bench_world, gold_standard):
    return build_test_set(
        bench_world, size=150, seed=1, exclude=gold_standard.asns()
    )


@pytest.fixture(scope="session")
def uniform_gold_standard(bench_world):
    return build_uniform_gold_standard(bench_world, per_category=20, seed=2)


@pytest.fixture(scope="session")
def built_system(bench_world, gold_standard, test_set):
    """The deployed ASdb system, with evaluation sets held out of ML
    training."""
    held_out = tuple(gold_standard.asns()) + tuple(test_set.asns())
    return build_asdb(
        bench_world,
        SystemConfig(seed=7, exclude_asns_from_training=held_out),
    )


@pytest.fixture(scope="session")
def asdb_dataset(built_system):
    """The fully classified dataset (one pass over every AS)."""
    return built_system.asdb.classify_all()


@pytest.fixture(scope="session")
def report():
    """Register a rendered table for the end-of-run summary and persist
    it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        _RESULTS.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, text in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)
