"""Section 6: joining ASdb with an LZR-style Telnet scan.

Paper: critical-infrastructure organizations (electric utilities,
government, financial institutions) are more likely to host Telnet than
technology companies.
"""

from repro.reporting import render_table
from repro.scan import TelnetScan
from repro.taxonomy import naicslite


def test_section6_telnet(benchmark, bench_world, asdb_dataset, report):
    def _run():
        scan = TelnetScan(bench_world, seed=6)
        return scan.telnet_rate_by_layer1(
            lambda asn: (
                asdb_dataset.get(asn).labels.layer1_slugs()
                if asdb_dataset.get(asn)
                else set()
            )
        )

    rates = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for slug, (hits, total) in sorted(
        rates.items(), key=lambda item: -(item[1][0] / max(item[1][1], 1))
    ):
        rows.append(
            [
                naicslite.layer1_by_slug(slug).name[:42],
                total,
                hits,
                f"{hits / total:.0%}" if total else "-",
            ]
        )
    table = render_table(
        ["ASdb layer 1 category", "ASes", "w/ Telnet", "Rate"],
        rows,
        title="Section 6: Telnet exposure by industry (ASdb x synthetic "
        "LZR scan; paper: critical infrastructure > technology)",
    )
    report("section6_telnet", table)

    tech_hits, tech_total = rates["computer_and_it"]
    tech_rate = tech_hits / tech_total
    critical = [
        slug for slug in ("utilities", "government", "finance")
        if rates.get(slug, (0, 0))[1] >= 5
    ]
    assert critical, "no critical-infrastructure categories classified"
    for slug in critical:
        hits, total = rates[slug]
        assert hits / total > tech_rate, slug
