"""Performance: the async serving layer under concurrent load.

Gates the tentpole's two promises: sustained request throughput with a
pool of keep-alive HTTP clients (>= 8 concurrent connections), and a
p99 latency that stays flat while the index is being atomically swapped
under that same load.  Numbers land in ``BENCH_serving.json`` at the
repo root (CI uploads it as an artifact); ``REPRO_BENCH_ROUNDS``
shrinks the measurement window for smoke runs like every other bench.

The fixtures here are deliberately independent of the session-scoped
paper world: serving latency is about the read path and the event loop,
not classifier quality, so a small no-ML world keeps the bench fast and
isolated.
"""

import asyncio
import http.client
import json
import os
import threading
import time
from pathlib import Path

from repro import SystemConfig, build_asdb
from repro.core import ASdbRecord, SnapshotStore, Stage
from repro.core.database import ASdbDataset
from repro.obs import percentile
from repro.reporting import render_table
from repro.serving import (
    ReadIndex,
    ServingApp,
    index_from_snapshots,
    index_from_store,
    refresh_index_from_snapshots,
)
from repro.taxonomy import LabelSet
from repro.world import WorldConfig, generate_world

BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "3")))

#: Concurrent keep-alive client connections (acceptance floor: >= 8).
CLIENTS = 8

#: Measurement window per round, scaled down for smoke runs.
WINDOW_SECONDS = 2.0 if BENCH_ROUNDS > 1 else 0.8

#: Conservative floors — a laptop-core asyncio loop with stdlib
#: clients comfortably clears hundreds of req/s; these only catch
#: order-of-magnitude regressions (accidental lock on the read path,
#: per-request index rebuild, lost keep-alive).
MIN_SUSTAINED_RPS = 50.0
MAX_P99_SECONDS = 0.5

#: Incremental-refresh gate: a 100k-AS world absorbing a <=1% delta
#: must refresh at least this many times faster than a full rebuild
#: (measured: ~70x; 5x is the acceptance floor from the issue).
REFRESH_RECORDS = 100_000
REFRESH_DELTA = 1_000
MIN_REFRESH_SPEEDUP = 5.0

#: Cached-response gate.  The committed ``serving_sustained_load``
#: baseline (uncached read path on the reference machine) is the floor
#: the cache must clear on full benchmark runs; single-round smoke runs
#: on shared CI hardware fall back to the order-of-magnitude floor,
#: like every other absolute number in this file.
CACHED_RPS_BASELINE = 7525.0
CACHED_RPS_FLOOR = (
    CACHED_RPS_BASELINE if BENCH_ROUNDS > 1 else MIN_SUSTAINED_RPS
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _record(key, payload):
    """Merge one benchmark's numbers into ``BENCH_serving.json``."""
    document = {}
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    document[key] = payload
    BENCH_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


class _Service:
    """ServingApp on its own event-loop thread, like tests use."""

    def __init__(self, app):
        self.app = app
        self._ready = threading.Event()
        self._loop = None
        self.address = None
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self.address = await self.app.start("127.0.0.1", 0)
            self._ready.set()
            try:
                await self.app.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.app.stop()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server did not start"
        return self

    def __exit__(self, *exc_info):
        for task in asyncio.all_tasks(self._loop):
            self._loop.call_soon_threadsafe(task.cancel)
        self._thread.join(10)


def _client_loop(host, port, paths, stop, latencies, errors):
    """One keep-alive connection issuing requests until ``stop``."""
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        i = 0
        while not stop.is_set():
            path = paths[i % len(paths)]
            i += 1
            t0 = time.perf_counter()
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                body = response.read()
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                errors.append(repr(exc))
                return
            latencies.append(time.perf_counter() - t0)
            if response.status != 200 or not body:
                errors.append(f"{path} -> {response.status}")
    finally:
        conn.close()


def _drive(service, paths, seconds):
    """Hammer the service with CLIENTS keep-alive threads; returns
    (request_count, elapsed, per-request latencies, errors)."""
    host, port = service.address
    stop = threading.Event()
    latencies, errors = [], []
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, paths, stop, latencies, errors),
        )
        for _ in range(CLIENTS)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join(30)
    elapsed = time.perf_counter() - t0
    return len(latencies), elapsed, latencies, errors


def _build_index():
    world = generate_world(WorldConfig(n_orgs=120, seed=9))
    built = build_asdb(world, SystemConfig(seed=9, train_ml=False))
    dataset = built.asdb.classify_all()
    return dataset, index_from_store(dataset, source="bench")


def test_perf_serving_sustained_load(report):
    dataset, index = _build_index()
    asns = [record.asn for record in dataset][:32]
    paths = (
        [f"/asn/{asn}" for asn in asns]
        + ["/categories", "/version", "/healthz"]
    )

    best_rps, all_latencies = 0.0, []
    with _Service(ServingApp(index)) as service:
        # Warm the connections and code paths before measuring.
        _drive(service, paths, 0.2)
        for _ in range(BENCH_ROUNDS):
            count, elapsed, latencies, errors = _drive(
                service, paths, WINDOW_SECONDS
            )
            assert not errors, errors[:5]
            best_rps = max(best_rps, count / elapsed)
            all_latencies.extend(latencies)

    p50 = percentile(all_latencies, 0.50)
    p99 = percentile(all_latencies, 0.99)
    assert best_rps >= MIN_SUSTAINED_RPS, (
        f"sustained throughput {best_rps:.0f} req/s under "
        f"{CLIENTS} clients is below the {MIN_SUSTAINED_RPS} floor"
    )
    assert p99 <= MAX_P99_SECONDS, f"p99 {p99:.3f}s above floor"

    _record("serving_sustained_load", {
        "clients": CLIENTS,
        "rounds": BENCH_ROUNDS,
        "window_seconds": WINDOW_SECONDS,
        "requests": len(all_latencies),
        "sustained_rps": round(best_rps, 1),
        "p50_ms": round(p50 * 1e3, 3),
        "p99_ms": round(p99 * 1e3, 3),
        "index_records": len(index),
    })
    report(
        "perf_serving_sustained_load",
        render_table(
            ["Metric", "Value"],
            [
                ["concurrent clients", CLIENTS],
                ["requests served", len(all_latencies)],
                ["sustained req/s", f"{best_rps:.0f}"],
                ["p50 latency", f"{p50 * 1e3:.2f}ms"],
                ["p99 latency", f"{p99 * 1e3:.2f}ms"],
            ],
        ),
    )


def test_perf_serving_swap_under_load(report):
    """Atomic swaps must not dent latency or leak mixed state."""
    dataset, index = _build_index()
    records = list(dataset)
    alt = ReadIndex.build(records, generation=2, source="bench-alt")
    app = ServingApp(index)
    paths = [f"/asn/{record.asn}" for record in records[:16]] + ["/version"]

    swaps = 0
    stop_swapping = threading.Event()

    def swapper():
        nonlocal swaps
        flip = 0
        while not stop_swapping.is_set():
            flip += 1
            app.swap(alt if flip % 2 else index)
            swaps += 1
            time.sleep(0.001)

    with _Service(app) as service:
        _drive(service, paths, 0.2)
        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            count, elapsed, latencies, errors = _drive(
                service, paths, WINDOW_SECONDS
            )
        finally:
            stop_swapping.set()
            thread.join(10)

    assert not errors, errors[:5]
    assert swaps > 0
    p99 = percentile(latencies, 0.99)
    rps = count / elapsed
    assert rps >= MIN_SUSTAINED_RPS
    assert p99 <= MAX_P99_SECONDS

    _record("serving_swap_under_load", {
        "clients": CLIENTS,
        "swaps_during_window": swaps,
        "requests": count,
        "sustained_rps": round(rps, 1),
        "p99_ms": round(p99 * 1e3, 3),
    })
    report(
        "perf_serving_swap_under_load",
        render_table(
            ["Metric", "Value"],
            [
                ["index swaps during window", swaps],
                ["sustained req/s", f"{rps:.0f}"],
                ["p99 latency", f"{p99 * 1e3:.2f}ms"],
            ],
        ),
    )


def _synthetic_store(root, records, delta):
    """A two-version snapshot store: ``records`` ASes, then a
    ``delta``-record update — the refresh scenario under test."""
    slug_pool = ["isp", "hosting", "banks", "streaming"]
    labels = {
        slug: LabelSet.from_layer2_slugs([slug]) for slug in slug_pool
    }

    def record(asn, generation):
        return ASdbRecord(
            asn=asn,
            labels=labels[slug_pool[(asn + generation) % 4]],
            stage=Stage.ONE_SOURCE,
            org_key=f"name:Org {asn % 5000}",
        )

    dataset = ASdbDataset()
    for asn in range(1, records + 1):
        dataset.add(record(asn, 0))
    store = SnapshotStore(root)
    store.save(dataset, window=(-1, 0))
    for asn in range(1, delta + 1):
        dataset.add(record(asn, 1))
    store.save(dataset, window=(0, 30))
    return store


def test_perf_incremental_refresh(report, tmp_path):
    """Delta-apply refresh must beat the full rebuild by >= 5x on a
    100k-AS world with a <=1% delta — while producing an index whose
    content fingerprint is identical to the full rebuild's."""
    root = str(tmp_path / "releases")
    _synthetic_store(root, REFRESH_RECORDS, REFRESH_DELTA)
    previous = index_from_snapshots(root, version=1, generation=1)

    best_full = best_incremental = float("inf")
    incremental = full = None
    for _ in range(BENCH_ROUNDS):
        t0 = time.perf_counter()
        full = index_from_snapshots(root, generation=2)
        best_full = min(best_full, time.perf_counter() - t0)
        t0 = time.perf_counter()
        incremental = refresh_index_from_snapshots(root, previous, 2)
        best_incremental = min(
            best_incremental, time.perf_counter() - t0
        )
    assert incremental is not None, "lineage check unexpectedly failed"
    equal = incremental.fingerprint() == full.fingerprint()
    assert equal, "delta-applied index diverged from the full rebuild"
    assert incremental.etag == full.etag

    speedup = best_full / best_incremental
    assert speedup >= MIN_REFRESH_SPEEDUP, (
        f"incremental refresh only {speedup:.1f}x faster than a full "
        f"rebuild (floor {MIN_REFRESH_SPEEDUP}x) at {REFRESH_RECORDS} "
        f"records / {REFRESH_DELTA} changed"
    )

    _record("incremental_refresh", {
        "records": REFRESH_RECORDS,
        "delta_records": REFRESH_DELTA,
        "rounds": BENCH_ROUNDS,
        "full_rebuild_ms": round(best_full * 1e3, 1),
        "incremental_ms": round(best_incremental * 1e3, 1),
        "speedup": round(speedup, 1),
        "speedup_floor": MIN_REFRESH_SPEEDUP,
        "equal_fingerprints": equal,
    })
    report(
        "perf_incremental_refresh",
        render_table(
            ["Metric", "Value"],
            [
                ["index records", REFRESH_RECORDS],
                ["delta records", REFRESH_DELTA],
                ["full rebuild", f"{best_full * 1e3:.0f}ms"],
                ["incremental refresh",
                 f"{best_incremental * 1e3:.1f}ms"],
                ["speedup", f"{speedup:.1f}x"],
                ["fingerprints equal", equal],
            ],
        ),
    )


def test_perf_cached_response_load(report):
    """The pre-rendered response cache must push sustained throughput
    on cacheable paths past the committed uncached baseline."""
    dataset, index = _build_index()
    asns = [record.asn for record in dataset][:32]
    paths = (
        [f"/asn/{asn}" for asn in asns] + ["/categories", "/version"]
    )

    best_rps, all_latencies = 0.0, []
    with _Service(ServingApp(index)) as service:
        # The warm-up round is what populates the response cache.
        _drive(service, paths, 0.2)
        for _ in range(BENCH_ROUNDS):
            count, elapsed, latencies, errors = _drive(
                service, paths, WINDOW_SECONDS
            )
            assert not errors, errors[:5]
            best_rps = max(best_rps, count / elapsed)
            all_latencies.extend(latencies)

    # Every driven path is cacheable, so the cache must hold exactly
    # the driven set — misses past warm-up would mean cache misses on
    # the hot path.
    assert set(index.response_cache) == set(paths)
    p99 = percentile(all_latencies, 0.99)
    assert best_rps >= CACHED_RPS_FLOOR, (
        f"cached-path throughput {best_rps:.0f} req/s is below the "
        f"{CACHED_RPS_FLOOR:.0f} floor (committed uncached baseline "
        f"{CACHED_RPS_BASELINE:.0f})"
    )
    assert p99 <= MAX_P99_SECONDS

    _record("cached_response_load", {
        "clients": CLIENTS,
        "rounds": BENCH_ROUNDS,
        "window_seconds": WINDOW_SECONDS,
        "requests": len(all_latencies),
        "sustained_rps": round(best_rps, 1),
        "p50_ms": round(percentile(all_latencies, 0.50) * 1e3, 3),
        "p99_ms": round(p99 * 1e3, 3),
        "floor_rps": round(CACHED_RPS_FLOOR, 1),
        "uncached_baseline_rps": CACHED_RPS_BASELINE,
        "cache_entries": len(index.response_cache),
    })
    report(
        "perf_cached_response_load",
        render_table(
            ["Metric", "Value"],
            [
                ["concurrent clients", CLIENTS],
                ["requests served", len(all_latencies)],
                ["sustained req/s", f"{best_rps:.0f}"],
                ["uncached baseline", f"{CACHED_RPS_BASELINE:.0f}"],
                ["p99 latency", f"{p99 * 1e3:.2f}ms"],
            ],
        ),
    )
