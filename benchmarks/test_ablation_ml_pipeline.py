"""Ablation: ML pipeline components (Figure 3's design choices).

Varies: homepage-only vs keyword-link crawling; with/without translation;
with/without TF-IDF.  Paper evidence: 67% of classifier failures trace to
missed internal pages, and 49% of sites are non-English - both stages are
load-bearing.
"""

import random

import pytest

from repro.datasources import DunBradstreet
from repro.ml import (
    WebClassificationPipeline,
    build_training_examples,
    confusion_matrix,
)
from repro.reporting import render_table
from repro.web import Scraper

VARIANTS = {
    "full pipeline": dict(translate=True, follow=True, tfidf=True),
    "homepage only": dict(translate=True, follow=False, tfidf=True),
    "no translation": dict(translate=False, follow=True, tfidf=True),
    "raw counts (no tf-idf)": dict(translate=True, follow=True,
                                   tfidf=False),
}


def test_ablation_ml_pipeline(
    benchmark, bench_world, gold_standard, built_system, report
):
    world = bench_world
    rng = random.Random(41)
    examples = build_training_examples(
        world, built_system.dnb, rng,
        exclude_asns=tuple(gold_standard.asns()),
    )
    eval_entries = [
        (entry, world.org_of_asn(entry.asn).domain)
        for entry in gold_standard.labeled_entries()
        if world.org_of_asn(entry.asn).domain is not None
    ]

    def _evaluate(variant):
        scraper = Scraper(
            world.web,
            translate=variant["translate"],
            follow_internal_links=variant["follow"],
        )
        pipeline = WebClassificationPipeline(
            scraper, use_tfidf=variant["tfidf"], seed=3
        ).fit(examples)
        truth, predicted = [], []
        for entry, domain in eval_entries:
            verdict = pipeline.classify_domain(domain)
            truth.append("isp" in entry.labels.layer2_slugs())
            predicted.append(verdict.is_isp)
        return confusion_matrix(truth, predicted).accuracy

    def _run():
        return {
            name: _evaluate(variant)
            for name, variant in VARIANTS.items()
        }

    scores = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = render_table(
        ["Variant", "ISP accuracy"],
        [[name, f"{value:.1%}"] for name, value in scores.items()],
        title="Ablation: ML pipeline components (ISP classifier, Gold "
        "Standard)",
    )
    report("ablation_ml_pipeline", table)

    full = scores["full pipeline"]
    # Translation is load-bearing: half the web is non-English.
    assert scores["no translation"] <= full
    # Crawling internal pages helps (the paper's 67%-of-failures finding).
    assert scores["homepage only"] <= full + 0.02
    # The full design is the best or tied.
    assert full >= max(scores.values()) - 0.03
