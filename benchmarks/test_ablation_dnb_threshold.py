"""Ablation: D&B confidence threshold at the system level.

Figure 2 / Table 5 motivate discarding D&B matches below confidence 6.
This sweep measures how the threshold moves *full-system* coverage and
accuracy: too lax admits wrong entities, too strict starves consensus.
"""

from repro import SystemConfig, build_asdb
from repro.evaluation import evaluate_stages
from repro.reporting import render_table

THRESHOLDS = (1, 4, 6, 8, 10)


def test_ablation_dnb_threshold(
    benchmark, bench_world, gold_standard, report
):
    held_out = tuple(gold_standard.asns())

    def _run():
        results = {}
        for threshold in THRESHOLDS:
            built = build_asdb(
                bench_world,
                SystemConfig(
                    seed=7,
                    train_ml=False,  # isolate the matching effect
                    exclude_asns_from_training=held_out,
                    dnb_confidence_threshold=threshold,
                ),
            )
            for asn in gold_standard.asns():
                built.asdb.classify(asn)
            results[threshold] = evaluate_stages(
                built.asdb.dataset, gold_standard
            )
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            f">= {threshold}",
            str(breakdown.overall_l1_coverage),
            str(breakdown.overall_l1_accuracy),
        ]
        for threshold, breakdown in results.items()
    ]
    table = render_table(
        ["D&B threshold", "L1 coverage", "L1 accuracy"],
        rows,
        title="Ablation: D&B confidence threshold (Gold Standard, "
        "ML stage disabled; paper deploys >= 6)",
    )
    report("ablation_dnb_threshold", table)

    coverage = {
        t: b.overall_l1_coverage.value for t, b in results.items()
    }
    accuracy = {
        t: b.overall_l1_accuracy.value for t, b in results.items()
    }
    # Coverage decreases monotonically as the threshold rises.
    assert coverage[1] >= coverage[6] >= coverage[10]
    # The deployed threshold keeps nearly all of the lax coverage while
    # matching or beating its accuracy.
    assert coverage[6] >= coverage[1] - 0.06
    assert accuracy[6] >= accuracy[1] - 0.02
