"""Figure 1: labeler agreement under NAICS vs NAICSlite.

Paper: NAICSlite roughly halves labeler disagreement (complete low-level
agreement 78% vs 31%); 34% of NAICS-labeled ASes share no code overlap.
"""

from repro.evaluation import figure1_agreement
from repro.reporting import render_bars, render_table


def test_figure1_agreement(benchmark, bench_world, report):
    naics, lite = benchmark.pedantic(
        lambda: figure1_agreement(bench_world, n=150, seed=0),
        rounds=1,
        iterations=1,
    )
    rows = []
    for stats in (naics, lite):
        rows.append(
            [
                stats.framework,
                f"{stats.top_complete:.0%}",
                f"{stats.low_complete:.0%}",
                f"{stats.top_overlap:.0%}",
                f"{stats.low_overlap:.0%}",
            ]
        )
    table = render_table(
        ["Framework", "Top complete", "Low complete", "Top >=1 overlap",
         "Low >=1 overlap"],
        rows,
        title="Figure 1: Classification-framework agreement "
        "(paper: NAICS 71/31, NAICSlite 92/78; 34% of NAICS pairs share "
        "no code)",
    )
    bars = render_bars(
        ["NAICS low-level complete", "NAICSlite low-level complete"],
        [naics.low_complete, lite.low_complete],
    )
    report("figure1_agreement", table + "\n\n" + bars)

    # Shape: NAICSlite halves disagreement.
    assert lite.low_complete > naics.low_complete
    assert (1 - lite.low_complete) <= (1 - naics.low_complete) / 1.5
    # A large minority of NAICS pairs share no code at all.
    assert naics.low_overlap <= 0.80
