"""Performance: ML training and classification throughput (Section 4.1),
plus the indexed-store streaming-sweep gates.

Paper: "Our model uses 6 CPU cores and 5 seconds to train, and it
requires about 1 second to classify 150 domains."  These benches time
the from-scratch stack (single core) against the same workload shape.

The streaming-sweep benches gate the storage spine instead: batched
upserts into the indexed sqlite store at 100k+ sharded-world records
(records/sec floor) and a 1M-record pass proving O(batch) peak
residency.  Their numbers land in ``BENCH_throughput.json`` at the
repo root (CI uploads it as an artifact), respecting
``REPRO_BENCH_ROUNDS`` like every other smoke-able bench.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.core.pipeline import ASdb
from repro.core.store import SqliteDatasetStore
from repro.ml import WebClassificationPipeline, build_training_examples
from repro.reporting import render_table
from repro.web import Scraper
from repro.world.generator import iter_record_shards

#: CI smoke runs set this to 1 to keep the job fast; the statistics are
#: then indicative only, which is fine for a smoke signal.
BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "3")))

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
)


def _record(key, payload):
    """Merge one benchmark's numbers into ``BENCH_throughput.json``."""
    document = {}
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    document[key] = payload
    BENCH_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


def _sweep_records(store, n_records, seed):
    """Stream synthetic record shards through the store the way a
    maintenance sweep does: add every record, flush per window."""
    total = 0
    for shard in iter_record_shards(n_records, seed=seed):
        for record in shard:
            store.add(record)
        store.flush()
        total += len(shard)
    return total


def test_perf_ml_training(benchmark, bench_world, built_system, report):
    rng = random.Random(71)
    examples = build_training_examples(bench_world, built_system.dnb, rng)

    def _train():
        return WebClassificationPipeline(
            Scraper(bench_world.web), seed=1
        ).fit(examples)

    pipeline = benchmark.pedantic(_train, rounds=BENCH_ROUNDS, iterations=1)
    assert pipeline.fitted
    stats = benchmark.stats.stats
    report(
        "perf_ml_training",
        render_table(
            ["Metric", "Value"],
            [
                ["training set size", len(examples)],
                ["mean wall time", f"{stats.mean:.2f}s"],
                ["paper reference", "5s on 6 cores"],
            ],
            title="Performance: ML pipeline training",
        ),
    )
    # Generous sanity band; the point is "seconds, not minutes".
    assert stats.mean < 60.0


def test_perf_classify_150_domains(
    benchmark, bench_world, built_system, report
):
    pipeline = built_system.ml_pipeline
    domains = [
        org.domain
        for org in bench_world.iter_organizations()
        if org.domain is not None
    ][:150]
    assert len(domains) == 150

    def _classify():
        # Cold-path measurement: drop memoized scores so every round
        # pays for translation + featurization + scoring.
        pipeline.feature_cache.clear()
        return [pipeline.classify_domain(domain) for domain in domains]

    verdicts = benchmark.pedantic(_classify, rounds=BENCH_ROUNDS, iterations=1)
    assert len(verdicts) == 150
    stats = benchmark.stats.stats
    report(
        "perf_classification",
        render_table(
            ["Metric", "Value"],
            [
                ["domains classified", 150],
                ["mean wall time", f"{stats.mean:.2f}s"],
                ["paper reference", "~1s for 150 domains"],
            ],
            title="Performance: classifying 150 domains",
        ),
    )
    assert stats.mean < 30.0


def test_perf_full_pipeline_throughput(
    benchmark, bench_world, built_system, report
):
    """End-to-end per-AS classification rate (cache disabled by using
    fresh ASdb state each round via reclassify)."""
    sample = bench_world.asns()[:200]

    def _classify_all():
        for asn in sample:
            built_system.asdb.reclassify(asn)
        return len(sample)

    count = benchmark.pedantic(
        _classify_all, rounds=min(2, BENCH_ROUNDS), iterations=1
    )
    stats = benchmark.stats.stats
    rate = count / stats.mean
    report(
        "perf_full_pipeline",
        render_table(
            ["Metric", "Value"],
            [
                ["ASes per round", count],
                ["mean wall time", f"{stats.mean:.2f}s"],
                ["throughput", f"{rate:.0f} ASes/s"],
            ],
            title="Performance: full Figure-4 pipeline throughput",
        ),
    )
    assert rate > 5  # sanity: the pipeline is not pathologically slow


def test_perf_parallel_batch_speedup(bench_world, built_system, report):
    """Sequential ``classify_all`` vs the 4-worker batch engine, plus the
    batched 150-domain ML path vs the per-domain loop.

    Timed manually (not via ``benchmark``) because the comparison needs
    two systems over the same world within one test, and the batch run
    must additionally prove byte-identical output.
    """

    def fresh_asdb():
        # Reuse the session system's trained/wired components; fresh
        # cache and dataset so both passes start cold.
        return ASdb(
            registry=bench_world.registry,
            resolver=built_system.resolver,
            peeringdb=built_system.peeringdb,
            ipinfo=built_system.ipinfo,
            ml_pipeline=built_system.ml_pipeline,
        )

    pipeline = built_system.ml_pipeline

    pipeline.feature_cache.clear()
    start = time.perf_counter()
    sequential = fresh_asdb().classify_all()
    sequential_seconds = time.perf_counter() - start

    pipeline.feature_cache.clear()
    start = time.perf_counter()
    batched = fresh_asdb().classify_batch(workers=4)
    batch_seconds = time.perf_counter() - start

    assert batched.to_csv() == sequential.to_csv()
    speedup = sequential_seconds / batch_seconds

    domains = [
        org.domain
        for org in bench_world.iter_organizations()
        if org.domain is not None
    ][:150]
    pipeline.feature_cache.clear()
    start = time.perf_counter()
    loop_verdicts = [pipeline.classify_domain(d) for d in domains]
    ml_loop_seconds = time.perf_counter() - start
    pipeline.feature_cache.clear()
    start = time.perf_counter()
    batch_verdicts = pipeline.classify_domains(domains)
    ml_batch_seconds = time.perf_counter() - start
    assert batch_verdicts == loop_verdicts

    cores = os.cpu_count() or 1
    report(
        "perf_parallel",
        render_table(
            ["Metric", "Value"],
            [
                ["ASes classified", len(sequential)],
                ["CPU cores", cores],
                ["sequential classify_all", f"{sequential_seconds:.2f}s"],
                ["classify_batch(workers=4)", f"{batch_seconds:.2f}s"],
                ["batch speedup", f"{speedup:.2f}x"],
                ["output", "byte-identical CSV"],
                ["ML 150-domain loop", f"{ml_loop_seconds:.2f}s"],
                ["ML 150-domain batch", f"{ml_batch_seconds:.2f}s"],
                ["ML batch speedup", f"{ml_loop_seconds / ml_batch_seconds:.2f}x"],
            ],
            title="Performance: parallel batch engine (4 workers)",
        ),
    )
    # The batched ML path must never be slower than the per-domain loop
    # (small tolerance for timer jitter on tiny workloads).
    assert ml_batch_seconds <= ml_loop_seconds * 1.10
    # Core-aware speedup gate: 4 workers can only deliver a 2x wall-time
    # win when the machine actually has cores to run them on.  On small
    # CI runners (< 4 cores) the batch engine still must not *lose* to
    # the sequential pass, but the 2x bar would be flaky or impossible.
    if cores >= 4:
        assert speedup >= 2.0
    else:
        assert speedup >= 1.0


def test_perf_streaming_sweep_100k(tmp_path, report):
    """Records-per-second gate for the streaming-sweep write path:
    100k sharded-world records upserted into the indexed sqlite store,
    one transaction per shard window, fresh database each round."""
    n_records = 100_000
    batch_size = 5_000
    best_seconds = None
    store = None
    for round_index in range(BENCH_ROUNDS):
        path = tmp_path / f"sweep-{round_index}.sqlite"
        store = SqliteDatasetStore(path, batch_size=batch_size)
        start = time.perf_counter()
        total = _sweep_records(store, n_records, seed=20211102)
        elapsed = time.perf_counter() - start
        assert total == n_records
        assert len(store) == n_records
        # The O(batch) witness: the buffer never held more than one
        # window of records, no matter how large the dataset got.
        assert store.resident_high_water <= batch_size
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
        if round_index != BENCH_ROUNDS - 1:
            store.close()
    rate = n_records / best_seconds
    _record(
        "streaming_sweep_100k",
        {
            "records": n_records,
            "batch_size": batch_size,
            "rounds": BENCH_ROUNDS,
            "best_seconds": round(best_seconds, 4),
            "records_per_sec": round(rate, 1),
            "resident_high_water": store.resident_high_water,
        },
    )
    report(
        "perf_streaming_sweep",
        render_table(
            ["Metric", "Value"],
            [
                ["records upserted", n_records],
                ["store batch size", batch_size],
                ["best wall time", f"{best_seconds:.2f}s"],
                ["throughput", f"{rate:.0f} records/s"],
                ["peak resident records", store.resident_high_water],
            ],
            title="Performance: streaming sweep into sqlite store",
        ),
    )
    store.close()
    # Conservative floor: the store sustains well over 20k records/s on
    # a development laptop; gate far below that to absorb CI noise while
    # still catching an accidental O(n) rewrite or per-record fsync.
    assert rate > 5_000


def test_perf_streaming_sweep_1m_resident(tmp_path, report):
    """Acceptance gate at the million-AS scale: a full streaming pass
    over 1M sharded records holds O(batch) records resident, and the
    indexed aggregates stay cheap afterwards."""
    n_records = 1_000_000
    batch_size = 10_000
    store = SqliteDatasetStore(tmp_path / "million.sqlite",
                               batch_size=batch_size)
    start = time.perf_counter()
    total = _sweep_records(store, n_records, seed=7)
    elapsed = time.perf_counter() - start
    assert total == n_records
    assert len(store) == n_records
    assert store.resident_high_water <= batch_size

    # Aggregates run as SQL over the indexes, never materializing the
    # dataset: they must answer in a small fraction of the write time.
    start = time.perf_counter()
    stages = store.stage_counts()
    histogram = store.category_histogram()
    coverage = store.coverage()
    aggregate_seconds = time.perf_counter() - start
    assert sum(stages.values()) == n_records
    assert histogram and 0.0 <= coverage <= 1.0

    rate = n_records / elapsed
    _record(
        "streaming_sweep_1m",
        {
            "records": n_records,
            "batch_size": batch_size,
            "seconds": round(elapsed, 4),
            "records_per_sec": round(rate, 1),
            "resident_high_water": store.resident_high_water,
            "aggregate_seconds": round(aggregate_seconds, 4),
        },
    )
    report(
        "perf_streaming_sweep_1m",
        render_table(
            ["Metric", "Value"],
            [
                ["records upserted", n_records],
                ["store batch size", batch_size],
                ["wall time", f"{elapsed:.2f}s"],
                ["throughput", f"{rate:.0f} records/s"],
                ["peak resident records", store.resident_high_water],
                ["SQL aggregates", f"{aggregate_seconds:.2f}s"],
            ],
            title="Performance: 1M-record streaming pass (O(batch) resident)",
        ),
    )
    store.close()
    assert rate > 5_000
    assert aggregate_seconds < elapsed
