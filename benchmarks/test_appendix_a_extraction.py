"""Appendix A / Section 3.1: WHOIS field availability after extraction.

Paper: 100% of RIR records have some form of name, 99.7% a country,
61.7% a physical address, 45% a phone number, 87.1% some kind of domain;
the org name field specifically is present for 80.19% of ASes.
"""

from repro.reporting import render_table

PAPER = {
    "name": 1.00,
    "country": 0.997,
    "address": 0.617,
    "phone": 0.45,
    "domain": 0.871,
}


def test_appendix_a_field_availability(benchmark, bench_world, report):
    availability = benchmark.pedantic(
        bench_world.registry.field_availability, rounds=1, iterations=1
    )
    rows = [
        [field, f"{availability[field]:.1%}", f"(paper {PAPER[field]:.1%})"]
        for field in ("name", "country", "address", "phone", "domain")
    ]
    table = render_table(
        ["Field", "Available", "Reference"],
        rows,
        title="Appendix A: extracted-field availability across the "
        "synthetic bulk WHOIS",
    )
    report("appendix_a_field_availability", table)

    assert availability["name"] == 1.0
    assert availability["country"] >= 0.98
    assert abs(availability["address"] - PAPER["address"]) <= 0.12
    assert abs(availability["phone"] - PAPER["phone"]) <= 0.12
    assert abs(availability["domain"] - PAPER["domain"]) <= 0.10
