"""Table 10: per-layer-1-category accuracy/coverage with matching (UGS).

Paper: ASdb consistently achieves coverage near the best source per
category while matching or beating its accuracy in about half of the
categories.
"""

from repro.datasources import Query
from repro.evaluation import category_accuracy_rows
from repro.reporting import render_table
from repro.taxonomy import LabelSet, naicslite


def test_table10_category_accuracy(
    benchmark,
    bench_world,
    asdb_dataset,
    uniform_gold_standard,
    built_system,
    report,
):
    world = bench_world

    def _asdb(asn):
        record = asdb_dataset.get(asn)
        return record.labels if record else LabelSet()

    def _source(source):
        def classify(asn):
            org = world.org_of_asn(asn)
            match = source.lookup_by_org(org.org_id)
            return match.labels if match else LabelSet()

        return classify

    def _run():
        return {
            "asdb": category_accuracy_rows(
                world, uniform_gold_standard, _asdb
            ),
            "dnb": category_accuracy_rows(
                world, uniform_gold_standard, _source(built_system.dnb)
            ),
            "zvelo": category_accuracy_rows(
                world, uniform_gold_standard, _source(built_system.zvelo)
            ),
            "crunchbase": category_accuracy_rows(
                world,
                uniform_gold_standard,
                _source(built_system.crunchbase),
            ),
        }

    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    slugs = sorted(
        {slug for rows in results.values() for slug in rows},
        key=lambda slug: naicslite.layer1_by_slug(slug).code,
    )
    rows = []
    for slug in slugs:
        rows.append(
            [naicslite.layer1_by_slug(slug).name[:38]]
            + [
                str(results[name].get(slug, "-"))
                for name in ("dnb", "zvelo", "crunchbase", "asdb")
            ]
        )
    table = render_table(
        ["Layer 1 category", "D&B", "Zvelo", "Crunchbase", "ASdb"],
        rows,
        title="Table 10: Per-category accuracy & coverage with matching "
        "(Uniform Gold Standard)",
    )
    report("table10_category_accuracy", table)

    # ASdb's per-category coverage tracks the best single source.
    better_or_equal = 0
    comparable = 0
    for slug in slugs:
        asdb_fraction = results["asdb"].get(slug)
        if asdb_fraction is None or asdb_fraction.total < 5:
            continue
        best_source_cov = max(
            (results[name][slug].total
             for name in ("dnb", "zvelo", "crunchbase")
             if slug in results[name]),
            default=0,
        )
        assert asdb_fraction.total >= 0.6 * best_source_cov, slug
        comparable += 1
        best_acc = max(
            (results[name][slug].value
             for name in ("dnb", "zvelo", "crunchbase")
             if slug in results[name] and results[name][slug].total >= 5),
            default=0.0,
        )
        if asdb_fraction.value >= best_acc - 0.10:
            better_or_equal += 1
    assert comparable >= 8
    # Competitive accuracy in a meaningful share of categories (paper:
    # equivalent or better in 9/16; the gap cases trace to Crunchbase's
    # high precision on tiny coverage, as in the paper).
    assert better_or_equal >= comparable * 0.3
