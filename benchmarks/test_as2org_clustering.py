"""AS-to-organization inference quality (Cai et al. [31] substrate).

The paper uses CAIDA's AS2org dataset for country data (Appendix A) and
org-level dedup.  This bench measures our reimplementation's clustering
precision/recall and country accuracy against the world's ground truth.
"""

from repro.reporting import render_table
from repro.whois import As2OrgInferrer


def test_as2org_clustering(benchmark, bench_world, report):
    inferred = benchmark.pedantic(
        lambda: As2OrgInferrer().infer(bench_world.registry),
        rounds=1,
        iterations=1,
    )

    good = bad = 0
    for org in inferred.orgs():
        for index, first in enumerate(org.asns):
            for second in org.asns[index + 1:]:
                same = (
                    bench_world.ases[first].org_id
                    == bench_world.ases[second].org_id
                )
                good += same
                bad += not same
    found = missed = 0
    for org_id in sorted(bench_world.organizations):
        asns = bench_world.asns_of_org(org_id)
        for index, first in enumerate(asns):
            for second in asns[index + 1:]:
                same = (
                    inferred.org_of(first).org_ref
                    == inferred.org_of(second).org_ref
                )
                found += same
                missed += not same

    country_hits = country_total = 0
    for asn in bench_world.asns():
        country = inferred.country_of(asn)
        if country is None:
            continue
        country_total += 1
        country_hits += (
            country == bench_world.org_of_asn(asn).country
        )

    precision = good / (good + bad) if good + bad else 1.0
    recall = found / (found + missed) if found + missed else 1.0
    country_coverage = country_total / len(bench_world.asns())
    rows = [
        ["inferred organizations", len(inferred), ""],
        ["pairwise precision", f"{precision:.1%}", ""],
        ["pairwise recall", f"{recall:.1%}",
         "bounded by WHOIS completeness"],
        ["country coverage", f"{country_coverage:.1%}",
         "(paper: AS2org supplies country for 32% of ASes)"],
        ["country accuracy", f"{country_hits / country_total:.1%}", ""],
    ]
    table = render_table(
        ["Metric", "Value", "Note"],
        rows,
        title="AS-to-organization inference quality",
    )
    report("as2org_clustering", table)

    assert precision >= 0.85
    assert recall >= 0.70
    assert country_hits / country_total >= 0.95
