"""Figure 6: MTurk implied hourly wages vs reward.

Paper: reward-per-task and median hourly wage are not directly correlated;
median wages ranged from $6.60/hour to $55/hour, averaging $19.41/hour.
"""

import statistics

from repro.crowd import MTurkPlatform
from repro.reporting import render_table

REWARDS = (10, 20, 30, 40, 50, 60)


def test_figure6_mturk_wages(benchmark, bench_world, report):
    orgs = list(bench_world.iter_organizations())
    finance = [
        org for org in orgs if "finance" in org.truth.layer1_slugs()
    ][:20]
    tech = [org for org in orgs if org.is_tech][:20]

    def _run():
        platform = MTurkPlatform(seed=17, pool_size=1500)
        rows = []
        all_wages = []
        for reward in REWARDS:
            fin = platform.run_batch(finance, reward)
            tec = platform.run_batch(tech, reward)
            all_wages += fin.hourly_wages() + tec.hourly_wages()
            rows.append(
                [
                    f"{reward}c",
                    f"${fin.median_hourly_wage:.2f}",
                    f"${tec.median_hourly_wage:.2f}",
                ]
            )
        return rows, all_wages

    rows, all_wages = benchmark.pedantic(_run, rounds=1, iterations=1)
    mean_wage = statistics.fmean(all_wages)
    median_spread = (min(all_wages), max(all_wages))
    table = render_table(
        ["Reward", "Finance median $/h", "Tech median $/h"],
        rows,
        title="Figure 6: MTurk wages vs reward "
        f"(overall mean ${mean_wage:.2f}/h; paper: $19.41/h average, "
        "median range $6.60-55/h, not directly correlated with reward)",
    )
    report("figure6_mturk_wages", table)

    # Wages are dispersed, not a clean function of the reward.
    assert median_spread[1] > 4 * max(median_spread[0], 0.01)
    # A 6x reward increase buys far less than 6x the wage.
    first_median = float(rows[0][1].lstrip("$"))
    last_median = float(rows[-1][1].lstrip("$"))
    assert last_median < 6 * max(first_median, 0.01)
    # The average sits in a plausible band around the paper's $19.41.
    assert 5.0 <= mean_wage <= 60.0
