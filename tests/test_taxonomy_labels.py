"""Tests for Label / LabelSet match semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.taxonomy import Label, LabelSet, naicslite

LAYER2_SLUGS = [sub.slug for sub in naicslite.ALL_LAYER2]
LAYER1_SLUGS = [cat.slug for cat in naicslite.ALL_LAYER1]


class TestLabel:
    def test_from_layer2_fills_layer1(self):
        label = Label.from_layer2("hosting")
        assert label.layer1 == "computer_and_it"
        assert label.layer2 == "hosting"

    def test_layer1_only_label(self):
        label = Label(layer1="finance")
        assert label.layer2 is None
        assert not label.has_layer2

    def test_mismatched_layers_rejected(self):
        with pytest.raises(ValueError):
            Label(layer1="finance", layer2="hosting")

    def test_unknown_layer1_rejected(self):
        with pytest.raises(KeyError):
            Label(layer1="not_a_category")

    def test_is_tech(self):
        assert Label.from_layer2("isp").is_tech
        assert not Label.from_layer2("banks").is_tech

    def test_code(self):
        assert Label.from_layer2("isp").code == "1.1"
        assert Label(layer1="computer_and_it").code == "1"

    def test_labels_hashable_and_equal(self):
        assert Label.from_layer2("isp") == Label(
            layer1="computer_and_it", layer2="isp"
        )
        assert len({Label.from_layer2("isp"), Label.from_layer2("isp")}) == 1


class TestLabelSet:
    def test_empty_set_falsy(self):
        assert not LabelSet()
        assert len(LabelSet()) == 0

    def test_layer1_overlap(self):
        a = LabelSet.from_layer2_slugs(["isp"])
        b = LabelSet.from_layer2_slugs(["hosting"])
        assert a.overlaps_layer1(b)  # both computer_and_it
        assert not a.overlaps_layer2(b)

    def test_layer2_overlap(self):
        a = LabelSet.from_layer2_slugs(["isp", "banks"])
        b = LabelSet.from_layer2_slugs(["banks"])
        assert a.overlaps_layer2(b)

    def test_no_overlap(self):
        a = LabelSet.from_layer2_slugs(["banks"])
        b = LabelSet.from_layer2_slugs(["hospitals"])
        assert not a.overlaps_layer1(b)
        assert not a.overlaps_layer2(b)

    def test_strict_equals_layer2(self):
        a = LabelSet.from_layer2_slugs(["isp", "hosting"])
        b = LabelSet.from_layer2_slugs(["hosting", "isp"])
        c = LabelSet.from_layer2_slugs(["isp"])
        assert a.strict_equals_layer2(b)
        assert not a.strict_equals_layer2(c)

    def test_union(self):
        a = LabelSet.from_layer2_slugs(["isp"])
        b = LabelSet.from_layer2_slugs(["banks"])
        assert len(a.union(b)) == 2

    def test_intersection_layer2(self):
        a = LabelSet.from_layer2_slugs(["isp", "banks"])
        b = LabelSet.from_layer2_slugs(["banks", "hospitals"])
        inter = a.intersection_layer2(b)
        assert inter.layer2_slugs() == {"banks"}

    def test_restrict_to_layer1(self):
        a = LabelSet.from_layer2_slugs(["isp", "hosting", "banks"])
        restricted = a.restrict_to_layer1()
        assert restricted.layer1_slugs() == {"computer_and_it", "finance"}
        assert not restricted.has_layer2

    def test_layer1_only_labels_do_not_contribute_layer2(self):
        mixed = LabelSet(
            [Label(layer1="finance"), Label.from_layer2("isp")]
        )
        assert mixed.layer2_slugs() == {"isp"}
        assert mixed.layer1_slugs() == {"finance", "computer_and_it"}

    def test_is_tech(self):
        assert LabelSet.from_layer2_slugs(["isp", "banks"]).is_tech
        assert not LabelSet.from_layer2_slugs(["banks"]).is_tech

    def test_equality_and_hash(self):
        a = LabelSet.from_layer2_slugs(["isp"])
        b = LabelSet.from_layer2_slugs(["isp"])
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_sorted_deterministic(self):
        a = LabelSet.from_layer2_slugs(["banks", "isp", "hospitals"])
        assert list(a) == sorted(a.labels, key=lambda l: l.sort_key)


@given(st.lists(st.sampled_from(LAYER2_SLUGS), min_size=0, max_size=8))
def test_union_with_self_is_idempotent(slugs):
    labels = LabelSet.from_layer2_slugs(slugs)
    assert labels.union(labels) == labels


@given(
    st.lists(st.sampled_from(LAYER2_SLUGS), min_size=1, max_size=8),
    st.lists(st.sampled_from(LAYER2_SLUGS), min_size=1, max_size=8),
)
def test_overlap_is_symmetric(slugs_a, slugs_b):
    a = LabelSet.from_layer2_slugs(slugs_a)
    b = LabelSet.from_layer2_slugs(slugs_b)
    assert a.overlaps_layer1(b) == b.overlaps_layer1(a)
    assert a.overlaps_layer2(b) == b.overlaps_layer2(a)


@given(st.lists(st.sampled_from(LAYER2_SLUGS), min_size=1, max_size=8))
def test_layer2_overlap_implies_layer1_overlap(slugs):
    a = LabelSet.from_layer2_slugs(slugs)
    b = LabelSet.from_layer2_slugs([slugs[0]])
    if a.overlaps_layer2(b):
        assert a.overlaps_layer1(b)


@given(st.lists(st.sampled_from(LAYER2_SLUGS), min_size=0, max_size=8))
def test_restrict_to_layer1_preserves_layer1_slugs(slugs):
    labels = LabelSet.from_layer2_slugs(slugs)
    assert labels.restrict_to_layer1().layer1_slugs() == labels.layer1_slugs()
