"""Tests for the NAICSlite taxonomy (paper Appendix C)."""

import pytest

from repro.taxonomy import naicslite


class TestTaxonomyShape:
    def test_17_layer1_categories(self):
        assert naicslite.NUM_LAYER1 == 17

    def test_95_layer2_categories(self):
        assert naicslite.NUM_LAYER2 == 95

    def test_at_most_ten_layer2_per_layer1(self):
        # Appendix C: "up to 9 lower-layer categories per top level" plus
        # the residual Other; CIT has exactly 10.
        for cat in naicslite.ALL_LAYER1:
            assert 1 <= len(cat.layer2) <= 10

    def test_layer1_codes_are_1_to_17(self):
        assert [cat.code for cat in naicslite.ALL_LAYER1] == list(range(1, 18))

    def test_layer2_codes_dotted_and_sequential(self):
        for cat in naicslite.ALL_LAYER1:
            for index, sub in enumerate(cat.layer2, start=1):
                assert sub.code == f"{cat.code}.{index}"
                assert sub.layer1_code == cat.code

    def test_slugs_unique(self):
        l1_slugs = [cat.slug for cat in naicslite.ALL_LAYER1]
        assert len(set(l1_slugs)) == len(l1_slugs)
        l2_slugs = [sub.slug for sub in naicslite.ALL_LAYER2]
        assert len(set(l2_slugs)) == len(l2_slugs)

    def test_no_slug_shared_between_layers(self):
        l1 = {cat.slug for cat in naicslite.ALL_LAYER1}
        l2 = {sub.slug for sub in naicslite.ALL_LAYER2}
        assert not (l1 & l2)


class TestKnownCategories:
    def test_tech_category_contents(self):
        cit = naicslite.layer1_by_slug("computer_and_it")
        slugs = [sub.slug for sub in cit.layer2]
        assert slugs == [
            "isp", "phone_provider", "hosting", "security", "software",
            "tech_consulting", "satellite", "search_engine", "ixp",
            "it_other",
        ]

    def test_isp_name(self):
        assert (
            naicslite.layer2_by_name("isp").name
            == "Internet Service Provider (ISP)"
        )

    def test_hosting_is_tech(self):
        assert naicslite.layer2_by_name("hosting").layer1.tech

    def test_finance_is_not_tech(self):
        assert not naicslite.layer1_by_slug("finance").tech

    def test_exactly_one_tech_layer1(self):
        techs = [cat for cat in naicslite.ALL_LAYER1 if cat.tech]
        assert len(techs) == 1
        assert techs[0].slug == "computer_and_it"

    def test_utilities_excludes_internet(self):
        assert "Excluding Internet Service" in (
            naicslite.layer1_by_slug("utilities").name
        )


class TestLookups:
    def test_layer1_by_code_roundtrip(self):
        for cat in naicslite.ALL_LAYER1:
            assert naicslite.layer1_by_code(cat.code) is cat

    def test_layer1_by_name_case_insensitive(self):
        cat = naicslite.layer1_by_name("finance and insurance")
        assert cat.slug == "finance"

    def test_layer2_by_code_roundtrip(self):
        for sub in naicslite.ALL_LAYER2:
            assert naicslite.layer2_by_code(sub.code) is sub

    def test_layer2_by_name_unknown_raises(self):
        with pytest.raises(KeyError):
            naicslite.layer2_by_name("nonexistent_slug")

    def test_layer1_child_lookup(self):
        cit = naicslite.layer1_by_slug("computer_and_it")
        assert cit.layer2_by_slug("ixp").name == "Internet Exchange Point (IXP)"
        with pytest.raises(KeyError):
            cit.layer2_by_slug("banks")


class TestSampleable:
    def test_16_sampleable_without_other(self):
        # Section 3.3: the Uniform Gold Standard samples across "all 16
        # NAICSlite Layer 1 categories" - everything but the Other bucket.
        cats = naicslite.sampleable_layer1()
        assert len(cats) == 16
        assert all(cat.slug != "other" for cat in cats)

    def test_17_with_other(self):
        assert len(naicslite.sampleable_layer1(include_other=True)) == 17
