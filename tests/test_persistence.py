"""Tests for dataset persistence (CSV and JSON round-trips)."""

import pytest

from repro.core import (
    ASdbDataset,
    ASdbRecord,
    Stage,
    dataset_from_csv,
    dataset_from_json,
    dataset_to_json,
)
from repro.taxonomy import Label, LabelSet


def _dataset():
    dataset = ASdbDataset()
    dataset.add(
        ASdbRecord(
            asn=64512,
            labels=LabelSet.from_layer2_slugs(["isp", "hosting"]),
            stage=Stage.MULTI_AGREE,
            domain="acme.net",
            sources=("dnb", "zvelo"),
            org_key="domain:acme.net",
        )
    )
    dataset.add(
        ASdbRecord(
            asn=64513,
            labels=LabelSet([Label(layer1="finance")]),
            stage=Stage.ONE_SOURCE,
            sources=("crunchbase",),
        )
    )
    dataset.add(
        ASdbRecord(
            asn=64514,
            labels=LabelSet(),
            stage=Stage.ZERO_SOURCES,
        )
    )
    return dataset


class TestCsvRoundTrip:
    def test_labels_and_stages_survive(self):
        original = _dataset()
        restored = dataset_from_csv(original.to_csv())
        assert len(restored) == 3
        assert restored.get(64512).labels == original.get(64512).labels
        assert restored.get(64512).stage is Stage.MULTI_AGREE
        assert restored.get(64512).sources == ("dnb", "zvelo")

    def test_layer1_only_label_survives(self):
        restored = dataset_from_csv(_dataset().to_csv())
        labels = restored.get(64513).labels
        assert labels.layer1_slugs() == {"finance"}
        assert not labels.has_layer2

    def test_unclassified_record_survives(self):
        restored = dataset_from_csv(_dataset().to_csv())
        record = restored.get(64514)
        assert not record.classified
        assert record.stage is Stage.ZERO_SOURCES

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_csv("not,a,header\n")

    def test_bad_asn_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_csv(
                "ASN,Layer1,Layer2,Sources,Stage\n"
                "banana,Finance and Insurance,,,one_source\n"
            )

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_csv(
                "ASN,Layer1,Layer2,Sources,Stage\n"
                "AS1,Quantum Industries,,,one_source\n"
            )

    def test_wrong_column_count_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_csv(
                "ASN,Layer1,Layer2,Sources,Stage\nAS1,too,few\n"
            )

    def test_conflicting_stage_rows_rejected(self):
        lines = _dataset().to_csv().strip().splitlines()
        # AS64512 spans two label rows; corrupt the stage of the last.
        index = max(
            i for i, line in enumerate(lines)
            if line.startswith("AS64512")
        )
        prefix, sources, _ = lines[index].rsplit(",", 2)
        lines[index] = ",".join((prefix, sources, Stage.ONE_SOURCE.value))
        with pytest.raises(ValueError, match="conflicting stages"):
            dataset_from_csv("\n".join(lines))

    def test_conflicting_source_rows_rejected(self):
        lines = _dataset().to_csv().strip().splitlines()
        index = max(
            i for i, line in enumerate(lines)
            if line.startswith("AS64512")
        )
        prefix, _, stage = lines[index].rsplit(",", 2)
        lines[index] = ",".join((prefix, "dnb", stage))
        with pytest.raises(ValueError, match="conflicting sources"):
            dataset_from_csv("\n".join(lines))

    def test_real_pipeline_output_roundtrips(self, medium_world):
        from repro import SystemConfig, build_asdb

        built = build_asdb(medium_world, SystemConfig(seed=1,
                                                      train_ml=False))
        for asn in medium_world.asns()[:60]:
            built.asdb.classify(asn)
        original = built.asdb.dataset
        restored = dataset_from_csv(original.to_csv())
        assert len(restored) == len(original)
        for record in original:
            assert restored.get(record.asn).labels == record.labels


class TestJsonRoundTrip:
    def test_lossless(self):
        original = _dataset()
        restored = dataset_from_json(dataset_to_json(original))
        for record in original:
            twin = restored.get(record.asn)
            assert twin.labels == record.labels
            assert twin.stage is record.stage
            assert twin.domain == record.domain
            assert twin.sources == record.sources
            assert twin.org_key == record.org_key

    def test_degraded_sources_roundtrip(self):
        original = ASdbDataset()
        original.add(
            ASdbRecord(
                asn=64515,
                labels=LabelSet.from_layer2_slugs(["isp"]),
                stage=Stage.ONE_SOURCE,
                sources=("peeringdb",),
                degraded_sources=("dnb", "zvelo"),
            )
        )
        restored = dataset_from_json(dataset_to_json(original))
        assert restored.get(64515).degraded_sources == ("dnb", "zvelo")
        # A record with no degradations omits the field entirely, so
        # fault-free exports stay byte-identical to older releases.
        assert "degraded_sources" not in dataset_to_json(_dataset())

    def test_format_marker_checked(self):
        with pytest.raises(ValueError):
            dataset_from_json('{"format": "other", "records": []}')

    def test_empty_dataset(self):
        restored = dataset_from_json(dataset_to_json(ASdbDataset()))
        assert len(restored) == 0


class TestDatasetDiff:
    def test_identical_snapshots_empty_diff(self):
        a, b = _dataset(), _dataset()
        assert a.diff(b).empty

    def test_added_and_removed(self):
        from repro.core import ASdbDataset, ASdbRecord, Stage
        from repro.taxonomy import LabelSet

        old = _dataset()
        new = ASdbDataset()
        for record in old:
            if record.asn != 64514:
                new.add(record)
        new.add(
            ASdbRecord(
                asn=70000,
                labels=LabelSet.from_layer2_slugs(["banks"]),
                stage=Stage.ONE_SOURCE,
            )
        )
        diff = new.diff(old)
        assert diff.added == (70000,)
        assert diff.removed == (64514,)
        assert diff.relabeled == ()

    def test_relabeled(self):
        from repro.core import ASdbRecord, Stage
        from repro.taxonomy import LabelSet

        old = _dataset()
        new = _dataset()
        new.add(
            ASdbRecord(
                asn=64512,
                labels=LabelSet.from_layer2_slugs(["banks"]),
                stage=Stage.MULTI_AGREE,
            )
        )
        diff = new.diff(old)
        assert diff.relabeled == (64512,)
        assert not diff.added and not diff.removed

    def test_diff_after_maintenance_sweep(self, medium_world):
        """Reclassification after churn shows up in the diff."""
        import copy

        from repro import SystemConfig, build_asdb
        from repro.core import dataset_from_json, dataset_to_json

        built = build_asdb(medium_world, SystemConfig(seed=1,
                                                      train_ml=False))
        for asn in medium_world.asns()[:50]:
            built.asdb.classify(asn)
        snapshot = dataset_from_json(dataset_to_json(built.asdb.dataset))
        # Force a label change through the corrections workflow.
        from repro.core import Correction, CorrectionQueue
        from repro.taxonomy import LabelSet

        queue = CorrectionQueue(built.asdb)
        target = medium_world.asns()[0]
        queue.review(
            queue.submit(
                Correction(
                    asn=target,
                    proposed=LabelSet.from_layer2_slugs(["gambling"]),
                    submitter="x",
                )
            ),
            approve=True,
        )
        diff = built.asdb.dataset.diff(snapshot)
        assert target in diff.relabeled
