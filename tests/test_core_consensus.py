"""Tests for the consensus phase and its ablation strategies."""

import pytest

from repro.core import (
    ACCURACY_RANK,
    Stage,
    majority_vote,
    resolve_consensus,
    single_best_source,
)
from repro.datasources.base import SourceEntry, SourceMatch
from repro.taxonomy import Label, LabelSet


def _match(source, slugs, layer1_only=()):
    labels = LabelSet.from_layer2_slugs(slugs)
    if layer1_only:
        labels = labels.union(LabelSet.from_layer1_slugs(layer1_only))
    entry = SourceEntry(
        entity_id=f"{source}-1",
        org_id="org-x",
        name="X",
        domain="x.example",
        native_categories=(),
        labels=labels,
    )
    return SourceMatch(source=source, entry=entry)


class TestResolveConsensus:
    def test_zero_sources(self):
        result = resolve_consensus({})
        assert result.stage is Stage.ZERO_SOURCES
        assert not result.labels

    def test_empty_labels_do_not_count_as_sources(self):
        result = resolve_consensus({"ipinfo": _match("ipinfo", [])})
        assert result.stage is Stage.ZERO_SOURCES

    def test_one_source(self):
        result = resolve_consensus({"dnb": _match("dnb", ["banks"])})
        assert result.stage is Stage.ONE_SOURCE
        assert result.labels.layer2_slugs() == {"banks"}
        assert result.trusted_sources == ("dnb",)

    def test_two_agreeing_sources_union(self):
        result = resolve_consensus(
            {
                "dnb": _match("dnb", ["banks", "investment"]),
                "zvelo": _match("zvelo", ["banks"]),
            }
        )
        assert result.stage is Stage.MULTI_AGREE
        # Union of the overlapping sources' categories.
        assert result.labels.layer2_slugs() == {"banks", "investment"}
        assert set(result.trusted_sources) == {"dnb", "zvelo"}

    def test_disagreement_auto_chooses_by_accuracy(self):
        result = resolve_consensus(
            {
                "crunchbase": _match("crunchbase", ["software"]),
                "dnb": _match("dnb", ["banks"]),
            }
        )
        assert result.stage is Stage.MULTI_DISAGREE
        # D&B (96%) outranks Crunchbase (83%).
        assert result.labels.layer2_slugs() == {"banks"}
        assert result.trusted_sources == ("dnb",)

    def test_accuracy_rank_matches_paper(self):
        ordering = sorted(
            ["ipinfo", "dnb", "peeringdb", "zvelo", "crunchbase"],
            key=lambda s: ACCURACY_RANK[s],
            reverse=True,
        )
        assert ordering[0] in ("ipinfo", "dnb")  # both 96%
        assert ordering[-1] == "crunchbase"

    def test_ipinfo_outranks_dnb_on_tie(self):
        result = resolve_consensus(
            {
                "ipinfo": _match("ipinfo", ["isp"]),
                "dnb": _match("dnb", ["banks"]),
            }
        )
        assert result.trusted_sources == ("ipinfo",)

    def test_layer1_only_agreement(self):
        # Crunchbase generic bucket (layer 1 only) agreeing with a D&B
        # layer 2 label counts as overlap.
        result = resolve_consensus(
            {
                "crunchbase": _match("crunchbase", [], ["finance"]),
                "dnb": _match("dnb", ["banks"]),
            }
        )
        assert result.stage is Stage.MULTI_AGREE

    def test_three_sources_two_agree(self):
        result = resolve_consensus(
            {
                "dnb": _match("dnb", ["banks"]),
                "zvelo": _match("zvelo", ["banks"]),
                "crunchbase": _match("crunchbase", ["software"]),
            }
        )
        assert result.stage is Stage.MULTI_AGREE
        assert "crunchbase" not in result.trusted_sources
        assert result.labels.layer2_slugs() == {"banks"}


class TestAblationStrategies:
    MATCHES = {
        "dnb": _match("dnb", ["banks"]),
        "zvelo": _match("zvelo", ["banks", "investment"]),
        "crunchbase": _match("crunchbase", ["investment"]),
    }

    def test_single_best_source(self):
        result = single_best_source(self.MATCHES)
        assert result.trusted_sources == ("dnb",)
        assert result.labels.layer2_slugs() == {"banks"}

    def test_single_best_source_empty(self):
        assert single_best_source({}).stage is Stage.ZERO_SOURCES

    def test_majority_vote(self):
        result = majority_vote(self.MATCHES)
        # banks: 2 votes, investment: 2 votes -> both kept.
        assert result.labels.layer2_slugs() == {"banks", "investment"}
        assert result.stage is Stage.MULTI_AGREE

    def test_majority_vote_single_votes(self):
        result = majority_vote(
            {
                "dnb": _match("dnb", ["banks"]),
                "zvelo": _match("zvelo", ["software"]),
            }
        )
        assert result.stage is Stage.MULTI_DISAGREE
        assert result.labels.layer2_slugs() == {"banks", "software"}
