"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_classify_defaults(self):
        args = build_parser().parse_args(["classify"])
        assert args.command == "classify"
        assert args.n_orgs == 400
        assert not args.no_ml

    def test_lookup_asn(self):
        args = build_parser().parse_args(["lookup", "--asn", "64512"])
        assert args.asn == 64512


class TestTaxonomyCommand:
    def test_prints_all_categories(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "Computer and Information Technology" in out
        assert "Internet Service Provider (ISP)" in out
        assert out.count("[") >= 95 + 17  # every slug printed

    def test_layer1_filter(self, capsys):
        assert main(["taxonomy", "--layer1", "finance"]) == 0
        out = capsys.readouterr().out
        assert "Finance and Insurance" in out
        assert "Internet Service Provider" not in out

    def test_unknown_layer1(self, capsys):
        assert main(["taxonomy", "--layer1", "nope"]) == 2


class TestClassifyCommand:
    def test_classify_small_world(self, capsys):
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "classified" in out
        assert "coverage" in out

    def test_classify_writes_csv(self, tmp_path, capsys):
        out_file = tmp_path / "dataset.csv"
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--out", str(out_file)]
        )
        assert code == 0
        text = out_file.read_text()
        assert text.startswith("ASN,Layer1,Layer2,Sources,Stage")

    def test_classify_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "dataset.json"
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--out", str(out_file)]
        )
        assert code == 0
        document = json.loads(out_file.read_text())
        assert document["format"] == "asdb-repro/1"
        assert document["records"]

    def test_bad_extension_rejected(self, tmp_path, capsys):
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--out", str(tmp_path / "dataset.xlsx")]
        )
        assert code == 2


class TestLookupCommand:
    def test_lookup_default_asn(self, capsys):
        assert main(["lookup", "--n-orgs", "60", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "classified as:" in out
        assert "stage:" in out

    def test_lookup_unknown_asn(self, capsys):
        code = main(
            ["lookup", "--asn", "999999999", "--n-orgs", "60",
             "--seed", "9"]
        )
        assert code == 2

    def test_lookup_trace_narrates_spans(self, capsys):
        code = main(
            ["lookup", "--n-orgs", "60", "--seed", "9", "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "classified in" in out
        assert "cache" in out
        assert "asn_match" in out
        assert "consensus" in out


class TestObservabilityFlags:
    def test_classify_prints_cache_hit_rate(self, capsys):
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit rate:" in out
        assert "keyless" in out

    def test_classify_metrics_out_prometheus(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.txt"
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--metrics-out", str(metrics_file)]
        )
        assert code == 0
        text = metrics_file.read_text()
        # Stage counters: one series per Stage value.
        from repro.core import Stage

        for stage in Stage:
            assert f'asdb_stage_total{{stage="{stage.value}"}}' in text
        # Per-source lookup counters with outcome labels.
        assert 'asdb_source_lookups_total{source="peeringdb"' in text
        assert 'outcome="match"' in text and 'outcome="miss"' in text
        # Latency histograms with cumulative buckets.
        assert "asdb_classify_seconds_bucket" in text
        assert "asdb_source_lookup_seconds_bucket" in text
        assert "asdb_domain_choice_seconds_bucket" in text
        assert 'le="+Inf"' in text
        # Cache hit-rate gauge.
        assert "asdb_cache_hit_rate" in text

    def test_classify_metrics_out_json(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--metrics-out", str(metrics_file)]
        )
        assert code == 0
        document = json.loads(metrics_file.read_text())
        assert "asdb_stage_total" in document["counters"]
        assert "asdb_cache_hit_rate" in document["gauges"]
        assert "asdb_classify_seconds" in document["histograms"]

    def test_classify_trace_prints_timing_table(self, capsys):
        code = main(
            ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-stage wall time" in out
        assert "cache" in out


class TestStatsCommand:
    def test_summary_table(self, capsys):
        code = main(
            ["stats", "--n-orgs", "40", "--seed", "5", "--no-ml"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Metrics summary" in out
        assert "asdb_stage_total" in out
        assert "asdb_classify_seconds" in out

    def test_prometheus_format(self, capsys):
        code = main(
            ["stats", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE asdb_stage_total counter" in out
        assert "# TYPE asdb_classify_seconds histogram" in out

    def test_json_format(self, capsys):
        code = main(
            ["stats", "--n-orgs", "40", "--seed", "5", "--no-ml",
             "--format", "json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counters"]["asdb_stage_total"]["series"]


class TestEvaluateCommand:
    def test_evaluate_runs(self, capsys):
        code = main(
            ["evaluate", "--n-orgs", "150", "--seed", "3",
             "--gold-size", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Overall Layer 1" in out
        assert "Gold-standard evaluation" in out


class TestDumpCommand:
    def test_dump_write_and_parse(self, tmp_path, capsys):
        out = tmp_path / "whois.dump"
        assert main(
            ["dump", "--n-orgs", "30", "--seed", "4", "--out", str(out)]
        ) == 0
        assert out.exists()
        assert main(["dump", "--parse", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "parsed" in stdout
        assert "name" in stdout

    def test_dump_requires_out_or_parse(self, capsys):
        assert main(["dump", "--n-orgs", "30"]) == 2


class TestReleaseCommands:
    """snapshot / refresh / diff drive the maintenance tentpole."""

    @pytest.fixture()
    def store(self, tmp_path):
        return str(tmp_path / "releases")

    def _snapshot(self, store):
        return main(
            ["snapshot", "--store", store, "--n-orgs", "60",
             "--seed", "11", "--no-ml", "--workers", "2"]
        )

    def test_snapshot_creates_v1(self, store, capsys):
        assert self._snapshot(store) == 0
        out = capsys.readouterr().out
        assert "stored snapshot v1" in out
        assert "baseline" in out

    def test_snapshot_refuses_existing_store(self, store, capsys):
        assert self._snapshot(store) == 0
        assert self._snapshot(store) == 2
        assert "already holds" in capsys.readouterr().err

    def test_refresh_then_diff(self, store, capsys):
        assert self._snapshot(store) == 0
        code = main(
            ["refresh", "--store", store, "--days", "120",
             "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reclassified exactly the churned set: True" in out
        assert main(["diff", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "v1 -> v2:" in out

    def test_refresh_requires_snapshot(self, store, capsys):
        assert main(["refresh", "--store", store, "--days", "30"]) == 2

    def test_diff_json_document(self, store, capsys):
        assert self._snapshot(store) == 0
        assert main(
            ["refresh", "--store", store, "--days", "200"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["diff", "--store", store, "--from", "1", "--to", "2",
             "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["from"] == 1 and document["to"] == 2
        assert isinstance(document["added"], list)

    def test_zero_day_refresh_reclassifies_nothing(self, store, capsys):
        assert self._snapshot(store) == 0
        assert main(
            ["refresh", "--store", store, "--days", "0"]
        ) == 0
        assert "reclassified 0 ASes" in capsys.readouterr().out


class TestProfileRouting:
    """Satellite: --profile narration must never interleave with the
    dataset on stdout."""

    BASE = ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml"]

    def test_profile_goes_to_stderr(self, capsys):
        assert main(self.BASE + ["--profile", "3"]) == 0
        captured = capsys.readouterr()
        assert "slowest pipeline stages" in captured.err
        assert "slowest pipeline stages" not in captured.out
        assert "classified" in captured.out

    def test_profile_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "profile.txt"
        assert main(
            self.BASE + ["--profile", "--profile-out", str(target)]
        ) == 0
        captured = capsys.readouterr()
        assert "slowest pipeline stages" in target.read_text()
        assert "slowest pipeline stages" not in captured.err
        assert f"wrote profile narration to {target}" in captured.out


class TestStatsCacheLayers:
    """Satellite: stats reports kernel and feature-cache counters, not
    just the org cache."""

    def test_all_layers_with_ml(self, capsys):
        assert main(["stats", "--n-orgs", "30", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Cache & pruning layers" in out
        assert "org cache" in out
        assert "string kernels" in out
        assert "candidates pruned before scoring" in out
        assert "feature cache" in out

    def test_feature_cache_row_absent_without_ml(self, capsys):
        assert main(
            ["stats", "--n-orgs", "30", "--seed", "5", "--no-ml"]
        ) == 0
        out = capsys.readouterr().out
        assert "Cache & pruning layers" in out
        assert "org cache" in out
        assert "feature cache" not in out


class TestRunWrapper:
    """Satellite: piping to `head` must not traceback.

    `run()` is the console entry point; it owns process-boundary
    concerns (broken pipes, Ctrl-C) so `main()` stays a clean
    in-process API for tests and embedding.
    """

    def test_broken_pipe_exits_zero_and_quiet(self, monkeypatch, capsys):
        import repro.cli as cli

        class _BrokenOut:
            def write(self, text):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                raise BrokenPipeError(32, "Broken pipe")

        monkeypatch.setattr(sys, "stdout", _BrokenOut())
        assert cli.run(["taxonomy"]) == 0
        assert "Traceback" not in capsys.readouterr().err

    def test_run_delegates_to_main(self, capsys):
        from repro.cli import run

        assert run(["taxonomy"]) == 0
        assert "computer_and_it" in capsys.readouterr().out

    def test_keyboard_interrupt_exits_130(self, monkeypatch):
        import repro.cli as cli

        def _interrupt(argv=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "main", _interrupt)
        assert cli.run(["taxonomy"]) == 130

    def test_pipe_to_head_subprocess(self, tmp_path):
        """End-to-end: `repro taxonomy | head -n 1` exits 0, no noise."""
        script = (
            "python -m repro taxonomy | head -n 1; exit ${PIPESTATUS[0]}"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        result = subprocess.run(
            ["bash", "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "Traceback" not in result.stderr
        assert "BrokenPipeError" not in result.stderr


class TestServeCommand:
    """Satellite of the tentpole: `repro serve` over a snapshot dir."""

    def _snapshot(self, tmp_path):
        from repro.core import SnapshotStore

        assert main([
            "snapshot", "--n-orgs", "30", "--seed", "5", "--no-ml",
            "--store", str(tmp_path / "releases"),
        ]) == 0
        return str(tmp_path / "releases")

    def test_serve_snapshots_end_to_end(self, tmp_path, capsys):
        import http.client
        import threading
        import time

        root = self._snapshot(tmp_path)
        capsys.readouterr()
        ready = tmp_path / "ready"
        exit_codes = []
        thread = threading.Thread(
            target=lambda: exit_codes.append(main([
                "serve", "--snapshots", root, "--port", "0",
                "--ready-file", str(ready), "--max-seconds", "15",
            ])),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 10
        while not ready.exists() and time.time() < deadline:
            time.sleep(0.05)
        assert ready.exists(), "server never wrote the ready file"
        host, port = ready.read_text().split()
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            body = json.loads(response.read())
            assert body["status"] == "ok"
            conn.request("GET", "/version")
            version = json.loads(conn.getresponse().read())
            assert version["snapshot_version"] == 1
            assert version["records"] > 0
        finally:
            conn.close()
        # thread keeps serving until --max-seconds; don't join it here.

    def test_serve_requires_exactly_one_source(self, tmp_path, capsys):
        assert main([
            "serve", "--snapshots", str(tmp_path), "--store",
            "memory:",
        ]) == 2
        assert "choose one of" in capsys.readouterr().err

    def test_serve_lazy_requires_fresh_world(self, tmp_path, capsys):
        root = self._snapshot(tmp_path)
        capsys.readouterr()
        assert main(["serve", "--snapshots", root, "--lazy"]) == 2
        assert "--lazy" in capsys.readouterr().err

class TestTemporalCommands:
    """asof / timeline / churn drive the temporal query layer."""

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("temporal") / "releases")
        assert main(
            ["snapshot", "--store", root, "--n-orgs", "60",
             "--seed", "11", "--no-ml", "--workers", "2",
             "--checkpoint-every", "2"]
        ) == 0
        for _ in range(2):
            assert main(
                ["refresh", "--store", root, "--days", "120",
                 "--workers", "2"]
            ) == 0
        return root

    def _an_asn(self, store):
        with open(os.path.join(store, "v0001.full.json")) as handle:
            return json.load(handle)["records"][0]["asn"]

    def test_parser_accepts_checkpoint_cadence(self):
        args = build_parser().parse_args(
            ["snapshot", "--store", "x", "--checkpoint-every", "4"]
        )
        assert args.checkpoint_every == 4

    def test_snapshot_reports_cadence(self, store, capsys):
        capsys.readouterr()
        # v3 is the second consecutive delta: promoted at cadence 2.
        with open(os.path.join(store, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["checkpoint_every"] == 2
        assert manifest["versions"][2].get("checkpoint")

    def test_asof_by_day(self, store, capsys):
        assert main(["asof", "--store", store, "--day", "130"]) == 0
        out = capsys.readouterr().out
        assert "as of day 130: v" in out
        assert "(verified)" in out

    def test_asof_writes_dataset(self, store, tmp_path, capsys):
        out_file = str(tmp_path / "asof.json")
        assert main(
            ["asof", "--store", store, "--version", "2",
             "--out", out_file]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out_file) as handle:
            document = json.load(handle)
        assert document["records"]

    def test_asof_selector_errors(self, store, capsys):
        assert main(["asof", "--store", store]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(
            ["asof", "--store", store, "--version", "1", "--day", "9"]
        ) == 2
        assert main(
            ["asof", "--store", store, "--day", "1",
             "--out", "x.txt"]
        ) == 2
        assert main(["asof", "--store", store, "--version", "99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_timeline_table_and_json(self, store, capsys):
        asn = self._an_asn(store)
        assert main(["timeline", "--store", store, "--asn",
                     str(asn)]) == 0
        out = capsys.readouterr().out
        assert f"AS{asn} classification timeline" in out
        assert "added" in out
        assert main(["timeline", "--store", store, "--asn", str(asn),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["asn"] == asn
        assert document["versions"] == 3
        assert document["events"][0]["change"] == "added"

    def test_timeline_unknown_asn(self, store, capsys):
        assert main(
            ["timeline", "--store", store, "--asn", "99999999"]
        ) == 0
        assert "never appears" in capsys.readouterr().out

    def test_churn_defaults_to_latest_pair(self, store, capsys):
        assert main(["churn", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "v2 -> v3:" in out
        assert "unchanged" in out

    def test_churn_json_document(self, store, capsys):
        assert main(
            ["churn", "--store", store, "--from", "1", "--to", "3",
             "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["old_version"] == 1
        assert document["new_version"] == 3
        assert isinstance(document["flows"], list)

    def test_churn_bad_versions(self, store, capsys):
        assert main(
            ["churn", "--store", store, "--from", "1", "--to", "9"]
        ) == 2
