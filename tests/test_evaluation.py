"""Tests for labelers, gold standards, metrics, and baselines."""

import random

import pytest

from repro.datasources import CaidaASClassification, DunBradstreet
from repro.evaluation import (
    BaumannFabianClassifier,
    Labeler,
    build_gold_standard,
    build_test_set,
    build_uniform_gold_standard,
    coarse_class_of_labels,
    evaluate_caida,
    evaluate_source,
    figure1_agreement,
    peeringdb_coarse_class,
    resolve_pair,
)
from repro.evaluation.metrics import Fraction
from repro.taxonomy import LabelSet, naicslite


class TestLabeler:
    def test_judgments_deterministic(self, medium_world):
        labeler = Labeler("r1", seed=3)
        org = next(medium_world.iter_organizations())
        assert labeler.label_naics(org) == labeler.label_naics(org)
        assert labeler.label_naicslite(org) == labeler.label_naicslite(org)

    def test_naics_judgment_codes_valid(self, medium_world):
        labeler = Labeler("r1")
        for org in list(medium_world.iter_organizations())[:40]:
            judgment = labeler.label_naics(org)
            for code in judgment.codes:
                assert len(code) == 6 and code.isdigit()

    def test_naicslite_judgment_mostly_truthful(self, medium_world):
        labeler = Labeler("r1")
        hits = total = 0
        for org in medium_world.iter_organizations():
            judgment = labeler.label_naicslite(org)
            if not judgment.labels:
                continue
            total += 1
            hits += judgment.labels.overlaps_layer2(org.truth)
        assert hits / total >= 0.80

    def test_resolve_pair_verifies_against_truth(self, medium_world):
        rng = random.Random(0)
        a, b = Labeler("a"), Labeler("b")
        for org in list(medium_world.iter_organizations())[:60]:
            resolved = resolve_pair(
                a.label_naicslite(org), b.label_naicslite(org), org, rng
            )
            if resolved.has_layer2:
                assert resolved.overlaps_layer2(org.truth)


class TestFigure1Agreement:
    def test_naicslite_agrees_more_than_naics(self, medium_world):
        naics_stats, lite_stats = figure1_agreement(medium_world, n=150)
        assert lite_stats.low_complete > naics_stats.low_complete
        assert lite_stats.top_complete > naics_stats.top_complete
        assert lite_stats.low_overlap > naics_stats.low_overlap

    def test_disagreement_roughly_halved(self, medium_world):
        # "NAICSlite decreases disagreement ... by a factor of two."
        naics_stats, lite_stats = figure1_agreement(medium_world, n=150)
        naics_disagree = 1.0 - naics_stats.low_complete
        lite_disagree = 1.0 - lite_stats.low_complete
        assert lite_disagree <= naics_disagree / 1.5

    def test_overlap_at_least_complete(self, medium_world):
        for stats in figure1_agreement(medium_world, n=100):
            assert stats.top_overlap >= stats.top_complete
            assert stats.low_overlap >= stats.low_complete


class TestGoldStandards:
    def test_gold_standard_size(self, medium_world):
        gs = build_gold_standard(medium_world, size=150, seed=0)
        assert len(gs) == 150
        # ~148/150 labelable, ~142 with layer 2 labels.
        assert len(gs.labeled_entries()) >= 140
        assert len(gs.layer2_entries()) >= 130

    def test_gold_standard_deterministic(self, medium_world):
        a = build_gold_standard(medium_world, seed=4)
        b = build_gold_standard(medium_world, seed=4)
        assert a.asns() == b.asns()
        assert [e.labels for e in a] == [e.labels for e in b]

    def test_test_set_disjoint_from_gold(self, medium_world):
        gs = build_gold_standard(medium_world, seed=0)
        ts = build_test_set(medium_world, seed=1, exclude=gs.asns())
        assert not (set(gs.asns()) & set(ts.asns()))

    def test_uniform_sample_spans_categories(self, medium_world):
        ugs = build_uniform_gold_standard(medium_world, per_category=5)
        covered = set()
        for entry in ugs.labeled_entries():
            covered |= medium_world.truth(entry.asn).layer1_slugs()
        # Nearly all 16 sampleable layer 1 categories present.
        assert len(covered & {
            c.slug for c in naicslite.sampleable_layer1()
        }) >= 12

    def test_uniform_sample_no_duplicates(self, medium_world):
        ugs = build_uniform_gold_standard(medium_world, per_category=5)
        assert len(ugs.asns()) == len(set(ugs.asns()))

    def test_labels_match_world_truth_layer1(self, medium_world):
        gs = build_gold_standard(medium_world, seed=0)
        agree = total = 0
        for entry in gs.labeled_entries():
            total += 1
            agree += entry.labels.overlaps_layer1(
                medium_world.truth(entry.asn)
            )
        assert agree / total >= 0.90


class TestFraction:
    def test_str_format(self):
        assert str(Fraction(93, 121)) == "93/121 (77%)"

    def test_empty_denominator(self):
        assert Fraction(0, 0).value == 0.0


class TestEvaluateSource:
    def test_dnb_evaluation_bands(self, medium_world):
        gs = build_gold_standard(medium_world, seed=0)
        dnb = DunBradstreet(medium_world)
        ev = evaluate_source(dnb, medium_world, gs)
        assert 0.70 <= ev.coverage.value <= 0.95          # 82%
        assert ev.l1_recall.value >= 0.85                 # 96%
        assert ev.l2_recall.value <= ev.l1_recall.value
        if ev.l2_recall_hosting.total >= 5:
            assert ev.l2_recall_hosting.value <= 0.75     # 45%

    def test_tech_plus_nontech_partition(self, medium_world):
        gs = build_gold_standard(medium_world, seed=0)
        dnb = DunBradstreet(medium_world)
        ev = evaluate_source(dnb, medium_world, gs)
        assert (
            ev.coverage_tech.total + ev.coverage_nontech.total
            == ev.coverage.total
        )


class TestCoarseMapping:
    def test_hosting_wins_over_isp(self):
        labels = LabelSet.from_layer2_slugs(["isp", "hosting"])
        assert coarse_class_of_labels(labels) == "hosting"

    def test_education_layer1(self):
        assert coarse_class_of_labels(
            LabelSet.from_layer2_slugs(["university"])
        ) == "education"

    def test_everything_else_business(self):
        assert coarse_class_of_labels(
            LabelSet.from_layer2_slugs(["banks"])
        ) == "business"

    def test_empty_is_none(self):
        assert coarse_class_of_labels(LabelSet()) is None

    def test_peeringdb_mapping(self):
        assert peeringdb_coarse_class("Content") == "hosting"
        assert peeringdb_coarse_class("Enterprise") == "business"
        assert peeringdb_coarse_class("Non-profit") == "business"
        assert peeringdb_coarse_class("Education/Research") == "education"
        assert peeringdb_coarse_class("Cable/DSL/ISP") == "isp"
        assert peeringdb_coarse_class("Network Service Provider") == "isp"


class TestBaselines:
    def test_caida_spot_check_shape(self, medium_world):
        gs = build_gold_standard(medium_world, seed=0)
        caida = CaidaASClassification(medium_world)
        ev = evaluate_caida(caida, medium_world, gs)
        assert 0.55 <= ev.coverage <= 0.90                # 72%
        assert ev.per_class_accuracy["content"] <= 0.10   # 0%
        assert ev.per_class_accuracy["enterprise"] >= 0.50  # 75%

    def test_bf_classifier_keywords(self, medium_world):
        bf = BaumannFabianClassifier(medium_world)
        assert bf.classify_keywords("First National Bank") == "finance"
        assert bf.classify_keywords("Valley Power Cooperative") == "utilities"
        assert bf.classify_keywords("zzz qqq") is None

    def test_bf_partial_coverage(self, medium_world):
        bf = BaumannFabianClassifier(medium_world)
        gs = build_gold_standard(medium_world, seed=0)
        coverage = bf.coverage(gs.asns())
        # Keyword analysis covers a fraction, far below ASdb's 96%.
        assert 0.10 <= coverage <= 0.75

    def test_bf_sec_index_unambiguous(self, medium_world):
        bf = BaumannFabianClassifier(medium_world)
        assert bf.sec_index_size > 0
