"""Property tests: optimized similarity kernels vs reference implementations.

The kernels in :mod:`repro.matching.kernels` (trimmed LCS, interned
tokenization, pruned batch scoring) must be *exactly* equivalent to the
straightforward reference code they replaced — same floats, same
winners, same tie-breaks — not merely close.  These tests hammer that
equivalence with seeded-random unicode workloads plus the adversarial
shapes the optimizations exploit (empty strings, containment, shared
prefixes/suffixes, duplicates).
"""

import random
import string

from repro.matching.kernels import (
    KernelStats,
    joined_form,
    lcs_ratio,
    lcs_ratio_reference,
    name_similarity_reference,
    score_candidates,
    score_candidates_reference,
)
from repro.matching.similarity import name_similarity
from repro.world.names import token_set, tokenize_name

ALPHABETS = [
    "ab",
    "abc ",
    string.ascii_lowercase + " ",
    string.ascii_letters + string.digits + " -.",
    "αβγδ εζη",
    "ÅéÜß ñç",
    "数据 网络 云",
]

ORG_NAMES = [
    "",
    "Acme Networks Inc",
    "acme networks",
    "ACME-NETWORKS LLC",
    "Acme Networks Incorporated",
    "Pacific Telecom Holdings",
    "pacific-telecom.net",
    "Société Générale des Réseaux",
    "Übermensch Hosting GmbH",
    "北京 数据 中心",
    "a",
    "aa",
    "The Of And",  # stopwords only
    "x" * 80,
    "x" * 79 + "y",
]


def _random_string(rng, alphabet, max_len=40):
    return "".join(
        rng.choice(alphabet) for _ in range(rng.randrange(max_len))
    )


class TestLcsRatio:
    def test_matches_reference_on_random_unicode(self):
        rng = random.Random(20211102)
        for trial in range(3000):
            alphabet = rng.choice(ALPHABETS)
            a = _random_string(rng, alphabet)
            b = _random_string(rng, alphabet)
            assert lcs_ratio(a, b) == lcs_ratio_reference(a, b), (a, b)

    def test_adversarial_shapes(self):
        # Each pair targets one fast path: empty, equal, containment,
        # common prefix, common suffix, prefix+suffix overlap risk.
        pairs = [
            ("", ""),
            ("", "abc"),
            ("abc", ""),
            ("abc", "abc"),
            ("abc", "zabcz"),
            ("zabcz", "abc"),
            ("prefix-one", "prefix-two"),
            ("one-suffix", "two-suffix"),
            ("aaaa", "aaa"),  # prefix scan would cover the shorter fully
            ("abab", "abab" * 5),
            ("xay", "xby"),
        ]
        for a, b in pairs:
            assert lcs_ratio(a, b) == lcs_ratio_reference(a, b), (a, b)

    def test_concatenated_real_names(self):
        forms = [joined_form(name) for name in ORG_NAMES]
        for a in forms:
            for b in forms:
                assert lcs_ratio(a, b) == lcs_ratio_reference(a, b), (a, b)

    def test_symmetry_and_bounds(self):
        rng = random.Random(7)
        for _ in range(500):
            a = _random_string(rng, "abcd ", 20)
            b = _random_string(rng, "abcd ", 20)
            score = lcs_ratio(a, b)
            assert score == lcs_ratio(b, a)
            assert 0.0 <= score <= 1.0


class TestNameSimilarity:
    def test_matches_reference_on_org_names(self):
        for a in ORG_NAMES:
            for b in ORG_NAMES:
                assert name_similarity(a, b) == name_similarity_reference(
                    a, b
                ), (a, b)

    def test_matches_reference_on_random_names(self):
        rng = random.Random(99)
        vocabulary = [
            "acme", "networks", "telecom", "pacific", "global", "data",
            "the", "of", "hosting", "cloud", "inc", "llc", "数据",
        ]
        for _ in range(800):
            a = " ".join(
                rng.choice(vocabulary)
                for _ in range(rng.randrange(6))
            )
            b = " ".join(
                rng.choice(vocabulary)
                for _ in range(rng.randrange(6))
            )
            assert name_similarity(a, b) == name_similarity_reference(
                a, b
            ), (a, b)


class TestScoreCandidates:
    def _random_workload(self, rng):
        vocabulary = [
            "acme", "networks", "telecom", "pacific", "global", "data",
            "hosting", "cloud", "systems", "corp", "west", "east", "",
        ]

        def name():
            return " ".join(
                rng.choice(vocabulary)
                for _ in range(rng.randrange(1, 5))
            )

        query = name()
        candidates = [name() for _ in range(rng.randrange(1, 9))]
        if rng.random() < 0.3 and candidates:
            # Force ties: duplicate an existing candidate.
            candidates.append(rng.choice(candidates))
        return query, candidates

    def test_matches_reference_including_ties(self):
        rng = random.Random(20211102)
        for trial in range(1500):
            query, candidates = self._random_workload(rng)
            assert score_candidates(query, candidates) == (
                score_candidates_reference(query, candidates)
            ), (query, candidates)

    def test_first_max_wins_on_exact_duplicates(self):
        index, score = score_candidates(
            "acme networks", ["acme networks", "acme networks"]
        )
        assert index == 0
        assert score == 1.0

    def test_empty_candidate_list(self):
        assert score_candidates("acme", []) == (-1, -1.0)

    def test_stats_invariant_and_pruning_fires(self):
        # First candidate is a perfect match, so every later candidate
        # is prunable by the upper bound.
        stats = KernelStats()
        candidates = ["acme networks"] + [
            f"unrelated hosting {index}" for index in range(20)
        ]
        index, score = score_candidates(
            "acme networks", candidates, stats=stats
        )
        assert (index, score) == (0, 1.0)
        assert stats.candidates == len(candidates)
        assert stats.candidates == stats.computed + stats.pruned
        assert stats.pruned > 0

    def test_stats_accumulate_across_calls(self):
        stats = KernelStats()
        score_candidates("acme", ["acme", "other"], stats=stats)
        first = stats.candidates
        score_candidates("acme", ["acme", "other"], stats=stats)
        assert stats.candidates == 2 * first
        assert stats.candidates == stats.computed + stats.pruned


class TestInternedTokenization:
    def test_tokenize_name_returns_fresh_mutable_list(self):
        first = tokenize_name("Acme Networks Inc")
        first.append("mutated")
        second = tokenize_name("Acme Networks Inc")
        assert "mutated" not in second

    def test_token_set_matches_tokenize_name(self):
        for name in ORG_NAMES:
            assert token_set(name) == frozenset(tokenize_name(name)), name

    def test_joined_form_deterministic(self):
        assert joined_form("Acme Networks") == joined_form(
            "networks ACME"
        )
        # Stopword-only names fall back to the squashed lowercase form.
        assert joined_form("The Of") == "theof"
