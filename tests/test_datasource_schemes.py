"""Consistency tests for the custom classification schemes and emission."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.datasources import schemes
from repro.datasources.emission import (
    confused_layer1_slug,
    confused_sibling,
    emit_layer2_slugs,
)
from repro.taxonomy import LabelSet, naicslite
from repro.world.calibration import CONFUSION_L1, CONFUSION_L2, DNB

LAYER2_SLUGS = [sub.slug for sub in naicslite.ALL_LAYER2]
LAYER1_SLUGS = [cat.slug for cat in naicslite.ALL_LAYER1]


class TestZveloScheme:
    def test_every_layer2_has_a_zvelo_bucket(self):
        for slug in LAYER2_SLUGS:
            assert schemes.zvelo_category_for_layer2(slug)

    def test_every_bucket_has_a_translation(self):
        buckets = {
            schemes.zvelo_category_for_layer2(slug)
            for slug in LAYER2_SLUGS
        }
        for bucket in buckets:
            labels = schemes.zvelo_to_naicslite(bucket)
            assert isinstance(labels, LabelSet)

    def test_hosting_bucket_is_narrow(self):
        # PeeringDB-style lossiness: only the hosting slug maps to the
        # web_hosting bucket, and its translation is exactly hosting.
        assert schemes.zvelo_category_for_layer2("hosting") == "web_hosting"
        assert schemes.zvelo_to_naicslite("web_hosting").layer2_slugs() == {
            "hosting"
        }

    def test_isp_and_phone_share_a_bucket(self):
        assert schemes.zvelo_category_for_layer2(
            "isp"
        ) == schemes.zvelo_category_for_layer2("phone_provider")

    def test_translation_roundtrip_hits_layer1(self):
        # Translating a slug's bucket lands in the right layer 1 for the
        # overwhelming majority of slugs (the lossiness is at layer 2).
        hits = 0
        for slug in LAYER2_SLUGS:
            bucket = schemes.zvelo_category_for_layer2(slug)
            labels = schemes.zvelo_to_naicslite(bucket)
            layer1 = naicslite.layer2_by_name(slug).layer1.slug
            hits += layer1 in labels.layer1_slugs()
        assert hits / len(LAYER2_SLUGS) >= 0.85


class TestCrunchbaseScheme:
    def test_every_layer2_reaches_some_category(self):
        for slug in LAYER2_SLUGS:
            category = schemes.crunchbase_category_for_layer2(slug)
            assert category is not None, slug
            assert category in schemes.CRUNCHBASE_TO_NAICSLITE

    def test_generic_buckets_are_layer1_only(self):
        labels = schemes.crunchbase_to_naicslite("commerce and shopping")
        assert labels.layer1_slugs() == {"retail"}
        assert not labels.has_layer2

    def test_specific_buckets_carry_layer2(self):
        assert "hosting" in schemes.crunchbase_to_naicslite(
            "cloud infrastructure"
        ).layer2_slugs()


class TestPeeringdbScheme:
    def test_six_categories(self):
        assert len(schemes.PEERINGDB_CATEGORIES) == 6

    def test_all_categories_translate(self):
        for category in schemes.PEERINGDB_CATEGORIES:
            schemes.peeringdb_to_naicslite(category)  # must not raise

    def test_enterprise_translates_to_nothing(self):
        assert not schemes.peeringdb_to_naicslite("Enterprise")

    def test_hosting_has_no_home(self):
        # No PeeringDB category translates to the hosting slug.
        for category in schemes.PEERINGDB_CATEGORIES:
            labels = schemes.peeringdb_to_naicslite(category)
            assert "hosting" not in labels.layer2_slugs(), category

    @given(st.sampled_from(LAYER2_SLUGS))
    def test_category_for_any_slug(self, slug):
        layer1 = naicslite.layer2_by_name(slug).layer1.slug
        category = schemes.peeringdb_category_for(layer1, slug)
        assert category in schemes.PEERINGDB_CATEGORIES


class TestIPinfoScheme:
    def test_four_categories(self):
        assert len(schemes.IPINFO_CATEGORIES) == 4

    def test_business_translates_to_nothing(self):
        assert not schemes.ipinfo_to_naicslite("business")

    @given(st.sampled_from(LAYER2_SLUGS))
    def test_category_for_any_slug(self, slug):
        layer1 = naicslite.layer2_by_name(slug).layer1.slug
        category = schemes.ipinfo_category_for(layer1, slug)
        assert category in schemes.IPINFO_CATEGORIES

    def test_isp_keeps_identity(self):
        assert schemes.ipinfo_category_for("computer_and_it", "isp") == "isp"
        assert schemes.ipinfo_to_naicslite("isp").layer2_slugs() == {"isp"}


class TestConfusionTables:
    def test_l2_partners_share_layer1(self):
        for slug, partners in CONFUSION_L2.items():
            layer1 = naicslite.layer2_by_name(slug).layer1.code
            for partner in partners:
                assert (
                    naicslite.layer2_by_name(partner).layer1.code == layer1
                ), (slug, partner)

    def test_l1_partners_differ(self):
        for slug, partners in CONFUSION_L1.items():
            assert slug not in partners

    def test_l1_table_covers_every_layer1(self):
        assert set(CONFUSION_L1) == set(LAYER1_SLUGS)


class TestEmission:
    def test_confused_sibling_same_layer1(self):
        rng = random.Random(0)
        for slug in LAYER2_SLUGS:
            sibling = confused_sibling(rng, slug)
            assert (
                naicslite.layer2_by_name(sibling).layer1.code
                == naicslite.layer2_by_name(slug).layer1.code
            )

    def test_confused_layer1_differs(self):
        rng = random.Random(0)
        for slug in LAYER2_SLUGS[:30]:
            wrong = confused_layer1_slug(rng, slug)
            assert (
                naicslite.layer2_by_name(wrong).layer1.code
                != naicslite.layer2_by_name(slug).layer1.code
            )

    def test_emission_respects_coverage_zero(self):
        from repro.world.calibration import BusinessSourceCalibration

        never = BusinessSourceCalibration(
            name="never", coverage_tech=0.0, coverage_nontech=0.0,
            l1_recall_tech=1.0, l1_recall_nontech=1.0,
            l2_recall_tech=1.0, l2_recall_nontech=1.0,
        )
        rng = random.Random(0)
        truth = LabelSet.from_layer2_slugs(["isp"])
        for _ in range(20):
            assert emit_layer2_slugs(rng, truth, never) is None

    def test_emission_perfect_source_always_correct(self):
        from repro.world.calibration import BusinessSourceCalibration

        perfect = BusinessSourceCalibration(
            name="perfect", coverage_tech=1.0, coverage_nontech=1.0,
            l1_recall_tech=1.0, l1_recall_nontech=1.0,
            l2_recall_tech=1.0, l2_recall_nontech=1.0,
            multi_label_rate=0.0,
        )
        rng = random.Random(0)
        for slug in LAYER2_SLUGS[:20]:
            truth = LabelSet.from_layer2_slugs([slug])
            emitted = emit_layer2_slugs(rng, truth, perfect)
            assert emitted == [slug]

    def test_emission_statistics_track_calibration(self):
        rng = random.Random(1)
        truth = LabelSet.from_layer2_slugs(["banks"])
        covered = l1_hits = l2_hits = 0
        trials = 2000
        for _ in range(trials):
            emitted = emit_layer2_slugs(rng, truth, DNB)
            if emitted is None:
                continue
            covered += 1
            labels = LabelSet.from_layer2_slugs(emitted)
            l1_hits += labels.overlaps_layer1(truth)
            l2_hits += labels.overlaps_layer2(truth)
        assert abs(covered / trials - DNB.coverage_nontech) < 0.04
        assert abs(l1_hits / covered - DNB.l1_recall_nontech) < 0.05
        assert abs(l2_hits / covered - DNB.l2_recall_nontech) < 0.05

    def test_layer1_only_truth_emits_within_layer1(self):
        from repro.taxonomy import Label

        rng = random.Random(2)
        truth = LabelSet([Label(layer1="finance")])
        for _ in range(30):
            emitted = emit_layer2_slugs(rng, truth, DNB)
            if emitted is None:
                continue
            labels = LabelSet.from_layer2_slugs(emitted)
            assert labels.layer1_slugs() == {"finance"}
