"""Tests for the external data-source simulators."""

import pytest

from repro.datasources import (
    SOURCE_CATALOG,
    CaidaASClassification,
    Clearbit,
    Crunchbase,
    DunBradstreet,
    IPinfo,
    PeeringDB,
    Query,
    ZoomInfo,
    Zvelo,
)
from repro.datasources.caida import CAIDA_CLASSES, caida_class_for_truth
from repro.taxonomy import LabelSet


@pytest.fixture(scope="module")
def sources(medium_world):
    world = medium_world
    return {
        "dnb": DunBradstreet(world),
        "crunchbase": Crunchbase(world),
        "zoominfo": ZoomInfo(world),
        "clearbit": Clearbit(world),
        "zvelo": Zvelo(world),
        "peeringdb": PeeringDB(world),
        "ipinfo": IPinfo(world),
    }


def _coverage(world, source):
    orgs = list(world.iter_organizations())
    covered = sum(
        1
        for org in orgs
        if (m := source.lookup_by_org(org.org_id)) is not None and m.labels
    )
    return covered / len(orgs)


def _l1_recall(world, source):
    hits = total = 0
    for org in world.iter_organizations():
        match = source.lookup_by_org(org.org_id)
        if match is None or not match.labels:
            continue
        total += 1
        hits += match.labels.overlaps_layer1(org.truth)
    return hits / total if total else 0.0


class TestCoverageCalibration:
    """Coverage bands around Table 3 (wide to absorb sampling noise)."""

    @pytest.mark.parametrize(
        "name,low,high",
        [
            ("dnb", 0.72, 0.92),        # 82%
            ("crunchbase", 0.27, 0.50), # 37%
            ("zoominfo", 0.56, 0.80),   # 68%
            ("clearbit", 0.45, 0.72),   # 61%
            ("zvelo", 0.70, 0.95),      # 93%
            ("peeringdb", 0.08, 0.22),  # 15%
            ("ipinfo", 0.20, 0.40),     # 30%
        ],
    )
    def test_coverage_bands(self, medium_world, sources, name, low, high):
        assert low <= _coverage(medium_world, sources[name]) <= high

    def test_networking_sources_skew_tech(self, medium_world, sources):
        for name in ("peeringdb", "ipinfo"):
            source = sources[name]
            tech = nontech = tech_n = nontech_n = 0
            for org in medium_world.iter_organizations():
                covered = source.lookup_by_org(org.org_id) is not None
                if org.is_tech:
                    tech_n += 1
                    tech += covered
                else:
                    nontech_n += 1
                    nontech += covered
            assert tech / tech_n > nontech / nontech_n


class TestRecallCalibration:
    def test_dnb_l1_recall_high(self, medium_world, sources):
        assert _l1_recall(medium_world, sources["dnb"]) >= 0.90  # 96%

    def test_clearbit_l1_recall_poor(self, medium_world, sources):
        assert _l1_recall(medium_world, sources["clearbit"]) <= 0.50  # 34%

    def test_hosting_recall_poor_everywhere_but_ipinfo(
        self, medium_world, sources
    ):
        # Table 4: "All data sources, except IPinfo, do poorly when
        # classifying hosting providers ... correctness less than 63%."
        for name in ("dnb", "crunchbase", "zvelo", "peeringdb"):
            source = sources[name]
            hits = total = 0
            for org in medium_world.iter_organizations():
                if "hosting" not in org.truth.layer2_slugs():
                    continue
                match = source.lookup_by_org(org.org_id)
                if match is None or not match.labels.has_layer2:
                    continue
                total += 1
                hits += match.labels.overlaps_layer2(org.truth)
            if total >= 8:
                assert hits / total <= 0.70, name

    def test_peeringdb_hosting_recall_zero(self, medium_world, sources):
        source = sources["peeringdb"]
        for org in medium_world.iter_organizations():
            if org.truth.layer2_slugs() != {"hosting"}:
                continue
            match = source.lookup_by_org(org.org_id)
            if match is not None:
                assert "hosting" not in match.labels.layer2_slugs()

    def test_ipinfo_isp_recall_high(self, medium_world, sources):
        source = sources["ipinfo"]
        hits = total = 0
        for org in medium_world.iter_organizations():
            if "isp" not in org.truth.layer2_slugs():
                continue
            match = source.lookup_by_org(org.org_id)
            if match is None or not match.labels.has_layer2:
                continue
            total += 1
            hits += match.labels.overlaps_layer2(org.truth)
        assert hits / total >= 0.70  # 81%


class TestDnbMatching:
    def test_confidence_code_in_range(self, medium_world, sources):
        dnb = sources["dnb"]
        for org in list(medium_world.iter_organizations())[:50]:
            match = dnb.lookup(Query(name=org.name, domain=org.domain))
            if match is not None:
                assert 1 <= match.confidence <= 10

    def test_lookup_deterministic(self, medium_world, sources):
        dnb = sources["dnb"]
        org = next(medium_world.iter_organizations())
        query = Query(name=org.name, domain=org.domain)
        a = dnb.lookup(query)
        b = dnb.lookup(query)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.entry.entity_id == b.entry.entity_id
            assert a.confidence == b.confidence

    def test_high_confidence_more_accurate(self, medium_world, sources):
        dnb = sources["dnb"]
        buckets = {"low": [0, 0], "high": [0, 0]}
        for org in medium_world.iter_organizations():
            match = dnb.lookup(Query(name=org.name, domain=org.domain,
                                     address=org.address))
            if match is None:
                continue
            bucket = buckets["high" if match.confidence >= 6 else "low"]
            bucket[1] += 1
            bucket[0] += match.entry.org_id == org.org_id
        high_acc = buckets["high"][0] / max(buckets["high"][1], 1)
        low_acc = buckets["low"][0] / max(buckets["low"][1], 1)
        assert high_acc > low_acc
        assert high_acc >= 0.80  # Figure 2

    def test_wrong_matches_return_real_entries(self, medium_world, sources):
        dnb = sources["dnb"]
        wrong = [
            match
            for org in medium_world.iter_organizations()
            if (match := dnb.lookup(Query(name=org.name))) is not None
            and match.entry.org_id != org.org_id
        ]
        assert wrong  # entity disagreement exists
        for match in wrong[:5]:
            assert match.entry.org_id in medium_world.organizations


class TestCrunchbaseMatching:
    def test_domain_match_always_correct(self, medium_world, sources):
        cb = sources["crunchbase"]
        for org in medium_world.iter_organizations():
            if org.domain is None:
                continue
            match = cb.lookup(Query(domain=org.domain))
            if match is not None and match.via == "domain":
                # Domains are unique in the directory, so 100% accuracy
                # unless two orgs share a domain (they don't).
                assert match.entry.domain == org.domain

    def test_name_match_mostly_correct(self, medium_world, sources):
        cb = sources["crunchbase"]
        hits = total = 0
        for org in medium_world.iter_organizations():
            match = cb.lookup(Query(name=org.name))
            if match is None:
                continue
            total += 1
            hits += match.entry.org_id == org.org_id
        assert total > 0
        assert hits / total >= 0.85  # Table 5: 95%

    def test_no_identifiers_no_match(self, sources):
        assert sources["crunchbase"].lookup(Query()) is None


class TestZvelo:
    def test_requires_domain(self, sources):
        assert sources["zvelo"].lookup(Query(name="Acme")) is None

    def test_unreachable_domain_unclassified(self, sources):
        assert sources["zvelo"].lookup(Query(domain="no.such.example")) is None

    def test_classification_deterministic(self, medium_world, sources):
        zvelo = sources["zvelo"]
        org = next(
            o for o in medium_world.iter_organizations()
            if o.domain and o.has_website
        )
        a = zvelo.classify_domain(org.domain)
        b = zvelo.classify_domain(org.domain)
        assert a == b

    def test_classify_text_empty(self, sources):
        assert sources["zvelo"].classify_text("") is None

    def test_classify_text_below_threshold(self, sources):
        assert sources["zvelo"].classify_text("xyzzy plugh") is None

    def test_bank_text_classified_banking(self, sources):
        text = " ".join(["bank", "loan", "mortgage", "deposit", "credit",
                         "savings", "branch"] * 3)
        assert sources["zvelo"].classify_text(text) in (
            "banking", "investing"
        )


class TestASNKeyedSources:
    def test_lookup_requires_asn(self, sources):
        for name in ("peeringdb", "ipinfo"):
            assert sources[name].lookup(Query(name="Acme")) is None

    def test_asn_lookup_never_wrong_entity(self, medium_world, sources):
        for name in ("peeringdb", "ipinfo"):
            source = sources[name]
            for asn in medium_world.asns():
                match = source.lookup(Query(asn=asn))
                if match is not None:
                    expected = medium_world.ases[asn].org_id
                    assert match.entry.org_id == expected

    def test_peeringdb_isps_always_correct(self, medium_world, sources):
        # Section 3.3: PeeringDB classifies ISPs with a 100% TPR.
        pdb = sources["peeringdb"]
        for asn in medium_world.asns():
            org = medium_world.org_of_asn(asn)
            if "isp" not in org.truth.layer2_slugs():
                continue
            match = pdb.lookup(Query(asn=asn))
            if match is not None:
                assert "isp" in match.labels.layer2_slugs()

    def test_ipinfo_domain_hint_mostly_right(self, medium_world, sources):
        ipinfo = sources["ipinfo"]
        hits = total = 0
        for asn in medium_world.asns():
            hint = ipinfo.domain_hint(asn)
            if hint is None:
                continue
            total += 1
            hits += hint == medium_world.org_of_asn(asn).domain
        assert total > 0
        assert 0.70 <= hits / total <= 0.97  # Table 5: 86%


class TestCaida:
    def test_three_classes(self, medium_world):
        caida = CaidaASClassification(medium_world)
        for asn in medium_world.asns():
            label = caida.classify(asn)
            assert label is None or label in CAIDA_CLASSES

    def test_coverage_near_72(self, medium_world):
        caida = CaidaASClassification(medium_world)
        coverage = caida.coverage_count() / len(medium_world.asns())
        assert 0.62 <= coverage <= 0.82

    def test_content_class_fully_decayed(self, medium_world):
        # Section 2: 0% accuracy for the content class.
        caida = CaidaASClassification(medium_world)
        for asn in medium_world.asns():
            org = medium_world.org_of_asn(asn)
            if caida_class_for_truth(org.truth) != "content":
                continue
            label = caida.classify(asn)
            if label is not None:
                assert label != "content"

    def test_class_mapping(self):
        assert caida_class_for_truth(
            LabelSet.from_layer2_slugs(["isp"])
        ) == "transit/access"
        assert caida_class_for_truth(
            LabelSet.from_layer2_slugs(["hosting"])
        ) == "content"
        assert caida_class_for_truth(
            LabelSet.from_layer2_slugs(["banks"])
        ) == "enterprise"


class TestCatalog:
    def test_seven_candidate_sources(self):
        assert len(SOURCE_CATALOG) == 7

    def test_asdb_uses_five(self):
        used = [attrs.name for attrs in SOURCE_CATALOG if attrs.used_by_asdb]
        assert sorted(used) == [
            "crunchbase", "dnb", "ipinfo", "peeringdb", "zvelo",
        ]

    def test_naics_sources(self):
        naics = {
            attrs.name
            for attrs in SOURCE_CATALOG
            if attrs.industry_scheme.startswith("NAICS")
        }
        assert naics == {"dnb", "zoominfo", "clearbit"}
