"""Tests for repro.obs.trace, narration, and pipeline integration."""

import time

import pytest

from repro import SystemConfig, build_asdb
from repro.core import Stage
from repro.obs import (
    ClassificationTrace,
    MetricsRegistry,
    NullTraceBuilder,
    Span,
    TraceBuilder,
    narrate_trace,
    trace_builder,
)
from repro.obs.narrate import format_seconds

PIPELINE_SPANS = (
    "cache", "asn_match", "domain_choice", "ml", "source_match", "consensus"
)


class TestTraceBuilder:
    def test_records_spans_in_order(self):
        builder = TraceBuilder(asn=64512)
        with builder.span("cache") as span:
            span.set_status("miss")
        with builder.span("ml") as span:
            span.set_status("disabled").note(domain="a.net", score=0.25)
        trace = builder.finish()
        assert isinstance(trace, ClassificationTrace)
        assert trace.asn == 64512
        assert [span.name for span in trace.spans] == ["cache", "ml"]
        assert trace.spans[0].status == "miss"
        assert trace.spans[1].attributes == {"domain": "a.net", "score": 0.25}

    def test_durations_and_offsets_are_monotone(self):
        builder = TraceBuilder(asn=1)
        with builder.span("a"):
            time.sleep(0.001)
        with builder.span("b"):
            pass
        trace = builder.finish()
        first, second = trace.spans
        assert first.duration >= 0.001
        assert second.start_offset > first.start_offset
        assert trace.total_seconds >= first.duration + second.duration

    def test_span_lookup_and_stage_seconds(self):
        builder = TraceBuilder(asn=1)
        with builder.span("a"):
            pass
        with builder.span("a"):
            pass
        trace = builder.finish()
        assert trace.span("a") is trace.spans[0]
        assert trace.span("missing") is None
        seconds = trace.stage_seconds()
        assert seconds["a"] == pytest.approx(
            trace.spans[0].duration + trace.spans[1].duration
        )

    def test_to_dict_is_json_able(self):
        builder = TraceBuilder(asn=7)
        with builder.span("cache") as span:
            span.set_status("hit").note(key="name:acme")
        document = builder.finish().to_dict()
        assert document["asn"] == 7
        assert document["spans"][0]["name"] == "cache"
        assert document["spans"][0]["attributes"] == {"key": "name:acme"}


class TestTraceBuilderFactory:
    def test_enabled_returns_real_builder(self):
        assert isinstance(trace_builder(1, enabled=True), TraceBuilder)

    def test_disabled_returns_null_builder(self):
        builder = trace_builder(1, enabled=False)
        assert isinstance(builder, NullTraceBuilder)
        with builder.span("cache") as span:
            span.set_status("hit").note(key="x")
        assert builder.finish() is None


class TestNarration:
    def test_header_and_span_lines(self):
        trace = ClassificationTrace(
            asn=64512,
            spans=(
                Span("cache", 0.0, 0.00001, "miss", {"key": "name:acme"}),
                Span("ml", 0.0001, 0.002, "isp", {"isp_score": 0.91}),
            ),
            total_seconds=0.0021,
        )
        text = narrate_trace(trace)
        assert text.startswith("AS64512 classified in 2.10 ms (2 stages)")
        assert "cache" in text and "miss" in text
        assert "key=name:acme" in text
        assert "isp_score=0.910" in text

    def test_format_seconds_units(self):
        assert format_seconds(0.0000052) == "5 us"
        assert format_seconds(0.0042) == "4.20 ms"
        assert format_seconds(2.5) == "2.50 s"


class TestPipelineTracing:
    @pytest.fixture(scope="class")
    def traced(self, small_world):
        built = build_asdb(
            small_world,
            SystemConfig(seed=5, metrics=MetricsRegistry(), trace=True),
        )
        dataset = built.asdb.classify_all()
        return built, dataset

    def test_every_record_carries_a_trace(self, traced):
        _, dataset = traced
        assert all(record.trace is not None for record in dataset)
        assert all(
            record.trace.asn == record.asn for record in dataset
        )

    def test_span_names_are_pipeline_stages(self, traced):
        _, dataset = traced
        for record in dataset:
            names = [span.name for span in record.trace.spans]
            assert names[0] == "cache"
            assert set(names) <= set(PIPELINE_SPANS)

    def test_cached_record_trace_stops_at_cache_hit(self, traced):
        _, dataset = traced
        cached = [r for r in dataset if r.stage is Stage.CACHED]
        assert cached, "world should produce sibling cache hits"
        for record in cached:
            assert record.trace.span("cache").status == "hit"
            assert len(record.trace.spans) == 1

    def test_uncached_record_reaches_consensus(self, traced):
        _, dataset = traced
        record = next(
            r for r in dataset
            if r.stage not in (Stage.CACHED, Stage.MATCHED_BY_ASN)
        )
        names = [span.name for span in record.trace.spans]
        assert "consensus" in names

    def test_trace_excluded_from_record_equality(self, traced):
        from dataclasses import replace

        _, dataset = traced
        record = next(iter(dataset))
        assert record == replace(record, trace=None)

    def test_no_trace_by_default(self, small_world):
        built = build_asdb(small_world, SystemConfig(seed=5))
        record = built.asdb.classify(small_world.asns()[0])
        assert record.trace is None


class TestObservabilityIsInert:
    def test_dataset_identical_with_and_without_observability(
        self, small_world
    ):
        plain = build_asdb(small_world, SystemConfig(seed=5))
        instrumented = build_asdb(
            small_world,
            SystemConfig(seed=5, metrics=MetricsRegistry(), trace=True),
        )
        csv_plain = plain.asdb.classify_all().to_csv()
        csv_instrumented = instrumented.asdb.classify_all().to_csv()
        assert csv_plain == csv_instrumented


class TestPipelineMetrics:
    @pytest.fixture(scope="class")
    def run(self, small_world):
        registry = MetricsRegistry()
        built = build_asdb(
            small_world, SystemConfig(seed=5, metrics=registry)
        )
        dataset = built.asdb.classify_all()
        return registry, built, dataset

    def test_stage_counter_totals_match_dataset(self, run):
        registry, _, dataset = run
        counter = registry.get("asdb_stage_total")
        assert counter.total() == len(dataset)
        for stage, count in dataset.stage_counts().items():
            assert counter.value(stage=stage.value) == count

    def test_all_stages_preregistered(self, run):
        registry, _, _ = run
        series = registry.get("asdb_stage_total").series()
        assert {key[0] for key in series} == {s.value for s in Stage}

    def test_cache_lookup_outcomes_match_cache_counters(self, run):
        registry, built, _ = run
        counter = registry.get("asdb_cache_lookups_total")
        cache = built.asdb.cache
        assert counter.value(outcome="hit") == cache.hits
        assert counter.value(outcome="miss") == cache.misses
        assert counter.value(outcome="none_key") == cache.none_keys

    def test_cache_hit_rate_gauge_tracks_cache(self, run):
        registry, built, _ = run
        gauge = registry.get("asdb_cache_hit_rate")
        assert gauge.value() == pytest.approx(built.asdb.cache.hit_rate)

    def test_classify_latency_observed_per_as(self, run):
        registry, _, dataset = run
        histogram = registry.get("asdb_classify_seconds")
        assert histogram.count() == len(dataset)

    def test_source_lookups_counted_with_outcomes(self, run):
        registry, _, _ = run
        counter = registry.get("asdb_source_lookups_total")
        sources = {key[0] for key in counter.series()}
        assert {"peeringdb", "ipinfo", "dnb", "crunchbase",
                "zvelo"} <= sources
        assert counter.total() > 0

    def test_source_match_decisions_preregistered(self, run):
        registry, _, _ = run
        counter = registry.get("asdb_source_match_decisions_total")
        outcomes = {key[1] for key in counter.series()}
        assert outcomes == {"accepted", "low_confidence",
                            "domain_mismatch"}

    def test_ml_and_scrape_metrics_present_when_ml_on(self, run):
        registry, _, _ = run
        assert registry.get("asdb_ml_classify_seconds").count() > 0
        assert registry.get("asdb_scrape_seconds").count() > 0
        verdicts = registry.get("asdb_ml_verdicts_total")
        assert verdicts.total() > 0


class TestProfileAggregationEdgeCases:
    """Satellite: aggregate_spans / narrate_profile on degenerate
    inputs — empty runs, single-span runs, and stage-duration ties."""

    def _trace(self, asn, *spans):
        offset = 0.0
        built = []
        for name, duration in spans:
            built.append(Span(name, offset, duration, "", {}))
            offset += duration
        return ClassificationTrace(
            asn=asn, spans=tuple(built), total_seconds=offset
        )

    def test_empty_trace_list(self):
        from repro.obs import aggregate_spans, narrate_profile

        assert aggregate_spans([]) == []
        assert narrate_profile([]) == "no trace spans recorded"

    def test_traces_without_spans_produce_no_rows(self):
        from repro.obs import aggregate_spans, narrate_profile

        trace = self._trace(1)
        assert aggregate_spans([trace]) == []
        assert narrate_profile([trace]) == "no trace spans recorded"

    def test_single_span_run_owns_all_time(self):
        from repro.obs import aggregate_spans, narrate_profile

        trace = self._trace(1, ("ml", 0.5))
        assert aggregate_spans([trace]) == [("ml", 1, 0.5)]
        text = narrate_profile([trace])
        assert "top 1 of 1" in text
        assert "100.0%" in text

    def test_duration_ties_keep_first_seen_order(self):
        from repro.obs import aggregate_spans, narrate_profile

        traces = [self._trace(1, ("cache", 0.25), ("ml", 0.25))]
        rows = aggregate_spans(traces)
        assert rows == [("cache", 1, 0.25), ("ml", 1, 0.25)]
        text = narrate_profile(traces, top=1)
        assert "top 1 of 2" in text
        assert "cache" in text and "\n  ml" not in text

    def test_top_is_clamped_to_at_least_one_row(self):
        from repro.obs import narrate_profile

        traces = [self._trace(1, ("cache", 0.1), ("ml", 0.3))]
        text = narrate_profile(traces, top=0)
        assert "top 1 of 2" in text
        assert "ml" in text  # the slower stage wins the single slot
