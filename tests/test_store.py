"""Tests for the dataset storage backends (the sqlite tentpole).

The contract under test: the indexed sqlite store is a drop-in
``dataset`` for the pipeline, the snapshot store, and the maintenance
daemon, and every export, diff, and sweep over it is byte-identical to
the in-memory :class:`ASdbDataset` — only peak memory changes.
"""

import io
import json
import os
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro import SystemConfig, build_asdb
from repro.core import (
    ASdbDataset,
    ASdbRecord,
    JsonDatasetStore,
    SnapshotError,
    SnapshotStore,
    SqliteDatasetStore,
    Stage,
    StoreError,
    dataset_to_json,
    diff_stores,
    open_store,
    record_to_item,
)
from repro.core.snapshots import dataset_digest
from repro.core.store import _decode_record, _encode_record
from repro.datasources.faults import FaultPlan
from repro.obs import MetricsRegistry, RunLog, read_ledger
from repro.taxonomy import LabelSet, naicslite
from repro.world import WorldConfig, generate_world, simulate_churn
from repro.world.generator import iter_record_shards, iter_world_shards

LAYER2_SLUGS = [sub.slug for sub in naicslite.ALL_LAYER2]


def _record(asn, slugs=("isp",), stage=Stage.ONE_SOURCE, **kwargs):
    return ASdbRecord(
        asn=asn,
        labels=LabelSet.from_layer2_slugs(list(slugs)),
        stage=stage,
        **kwargs,
    )


def _items(records):
    """Release-format view of a record stream (what exports see)."""
    return [record_to_item(record) for record in records]


@pytest.fixture(scope="module")
def classified_pair(tmp_path_factory):
    """The same small world classified into memory and into sqlite."""
    world = generate_world(WorldConfig(n_orgs=80, seed=19))
    memory = build_asdb(
        world, SystemConfig(seed=1, train_ml=False)
    ).asdb
    memory.classify_all()

    path = tmp_path_factory.mktemp("store") / "dataset.sqlite"
    sqlite_system = build_asdb(
        world,
        SystemConfig(
            seed=1, train_ml=False,
            dataset_store=f"sqlite:{path}",
        ),
    ).asdb
    assert isinstance(sqlite_system.dataset, SqliteDatasetStore)
    sqlite_system.dataset._batch_size = 17  # force many mid-run flushes
    sqlite_system.classify_all()
    return world, memory.dataset, sqlite_system.dataset


class TestSqliteParity:
    def test_record_streams_identical(self, classified_pair):
        _, memory, store = classified_pair
        assert _items(store) == _items(memory)
        assert list(store.asns()) == [r.asn for r in memory]

    def test_exports_byte_identical(self, classified_pair):
        _, memory, store = classified_pair
        buffer = io.StringIO()
        store.write_json(buffer)
        assert buffer.getvalue() == dataset_to_json(memory)
        assert store.to_csv() == memory.to_csv()

    def test_aggregates_match(self, classified_pair):
        _, memory, store = classified_pair
        assert store.stage_counts() == memory.stage_counts()
        assert store.coverage() == memory.coverage()
        assert store.category_histogram() == memory.category_histogram()
        for layer1 in memory.category_histogram():
            assert store.asns_in_layer1(layer1) == \
                memory.asns_in_layer1(layer1)

    def test_len_contains_get(self, classified_pair):
        world, memory, store = classified_pair
        assert len(store) == len(memory)
        sample = world.asns()[0]
        assert sample in store
        assert record_to_item(store.get(sample)) == \
            record_to_item(memory.get(sample))
        assert store.get(4_200_000_000) is None
        assert 4_200_000_000 not in store

    def test_iter_range_window(self, classified_pair):
        world, _, store = classified_pair
        asns = world.asns()
        start, stop = asns[3], asns[12]
        window = [r.asn for r in store.iter_range(start, stop)]
        assert window == [a for a in asns if start <= a <= stop]
        assert [r.asn for r in store.iter_range(stop=asns[2])] == \
            asns[:3]

    def test_digest_matches_in_memory(self, classified_pair):
        _, memory, store = classified_pair
        assert dataset_digest(store) == dataset_digest(memory)

    def test_diff_between_backends_is_empty(self, classified_pair):
        _, memory, store = classified_pair
        assert diff_stores(store, memory).empty
        assert store.diff(memory).empty


class TestSqliteParityHardPaths:
    def test_parallel_workers_parity(self, tmp_path):
        world = generate_world(WorldConfig(n_orgs=60, seed=4))
        memory = build_asdb(
            world, SystemConfig(seed=2, train_ml=False)
        ).asdb
        memory.classify_all()

        store_system = build_asdb(
            world,
            SystemConfig(
                seed=2, train_ml=False, workers=4,
                dataset_store=f"sqlite:{tmp_path / 'par.sqlite'}",
            ),
        ).asdb
        store_system.classify_batch(workers=4)
        assert store_system.dataset.to_csv() == memory.dataset.to_csv()
        store_system.dataset.close()

    def test_fault_injection_parity(self, tmp_path):
        """Degraded classification (faults + retries) lands the same
        records in sqlite as in memory."""
        world = generate_world(WorldConfig(n_orgs=50, seed=9))
        faults = FaultPlan.uniform(0.2, seed=13)
        memory = build_asdb(
            world,
            SystemConfig(seed=3, train_ml=False, faults=faults),
        ).asdb
        memory.classify_all()

        store_system = build_asdb(
            world,
            SystemConfig(
                seed=3, train_ml=False, faults=faults,
                dataset_store=f"sqlite:{tmp_path / 'faulty.sqlite'}",
            ),
        ).asdb
        store_system.classify_all()
        buffer = io.StringIO()
        store_system.dataset.write_json(buffer)
        assert buffer.getvalue() == dataset_to_json(memory.dataset)
        store_system.dataset.close()


class TestWindowedSweeps:
    def test_windowed_sqlite_sweep_matches_single_batch(self, tmp_path):
        """Churn + streaming windowed sweep over sqlite produces the
        exact snapshot documents of an in-memory single-batch sweep,
        while the store never buffers more than its batch."""

        def run(dataset_store, sweep_batch, snapdir, store_batch=None):
            world = generate_world(WorldConfig(n_orgs=120, seed=31))
            built = build_asdb(
                world,
                SystemConfig(
                    seed=5, train_ml=False,
                    dataset_store=dataset_store,
                    sweep_batch_size=sweep_batch,
                    snapshot_dir=str(tmp_path / snapdir),
                ),
            )
            if store_batch is not None:
                built.asdb.dataset._batch_size = store_batch
            built.daemon.sweep(current_day=0)
            stats = simulate_churn(world, days=200, seed=6, start_day=1)
            assert stats.changed_asns, "churn produced no changes"
            built.daemon.sweep(current_day=200)
            return built

        sqlite_url = f"sqlite:{tmp_path / 'sweep.sqlite'}"
        windowed = run(sqlite_url, 13, "snap-sqlite", store_batch=7)
        baseline = run(None, None, "snap-memory")

        assert windowed.asdb.dataset.resident_high_water <= 7
        assert diff_stores(
            windowed.asdb.dataset, baseline.asdb.dataset
        ).empty
        assert windowed.asdb.dataset.to_csv() == \
            baseline.asdb.dataset.to_csv()
        # The snapshot documents (full v1 + delta v2) are byte-identical
        # across backends and sweep modes.
        for version in (1, 2):
            (a,) = list((tmp_path / "snap-sqlite").glob(f"*{version}*"))
            (b,) = list((tmp_path / "snap-memory").glob(f"*{version}*"))
            assert a.read_bytes() == b.read_bytes()
        windowed.asdb.dataset.close()

    def test_sweep_batch_bounds_residency(self, tmp_path):
        world = generate_world(WorldConfig(n_orgs=60, seed=12))
        built = build_asdb(
            world,
            SystemConfig(
                seed=7, train_ml=False,
                dataset_store=f"sqlite:{tmp_path / 'resident.sqlite'}",
                sweep_batch_size=11,
                snapshot_dir=str(tmp_path / "snap"),
            ),
        )
        built.asdb.dataset._batch_size = 11
        built.daemon.sweep(current_day=0)
        assert len(built.asdb.dataset) == len(world.asns())
        assert built.asdb.dataset.resident_high_water <= 11
        built.asdb.dataset.close()


class TestSnapshotIntegration:
    def test_load_into_sqlite_roundtrip(self, classified_pair, tmp_path):
        _, memory, _ = classified_pair
        snapshots = SnapshotStore(str(tmp_path / "snap"))
        saved = snapshots.save(memory)
        target = SqliteDatasetStore(
            tmp_path / "loaded.sqlite", batch_size=9
        )
        loaded = snapshots.load(saved.version, into=target)
        assert loaded is target
        assert target.resident_high_water <= 9
        assert diff_stores(target, memory).empty
        assert dataset_digest(target) == saved.digest
        target.close()

    def test_saves_leave_no_tmp_files(self, classified_pair, tmp_path):
        """Full and delta writes go through tmp+rename: a finished
        store directory never contains partial documents."""
        _, memory, _ = classified_pair
        snapshots = SnapshotStore(str(tmp_path / "snap"))
        snapshots.save(memory)
        mutated = ASdbDataset()
        for record in memory:
            mutated.add(record)
        mutated.add(_record(4_000_000))
        snapshots.save(mutated)  # delta
        leftovers = [
            name for name in os.listdir(tmp_path / "snap")
            if name.endswith(".tmp")
        ]
        assert leftovers == []
        assert len(snapshots.versions()) == 2

    def test_load_into_nonempty_store_rejected(
        self, classified_pair, tmp_path
    ):
        _, memory, _ = classified_pair
        snapshots = SnapshotStore(str(tmp_path / "snap"))
        saved = snapshots.save(memory)
        occupied = ASdbDataset()
        occupied.add(_record(65000))
        with pytest.raises(SnapshotError, match="not empty"):
            snapshots.load(saved.version, into=occupied)


class TestWriteBufferSemantics:
    def test_read_your_writes_without_flush(self, tmp_path):
        store = SqliteDatasetStore(tmp_path / "rw.sqlite", batch_size=100)
        record = _record(65010, slugs=("isp", "hosting"))
        store.add(record)
        # Visible before any flush transaction ran.
        assert store.get(65010) is record
        assert 65010 in store
        assert store._pending
        store.close()

    def test_remove_tombstone_and_return_value(self, tmp_path):
        store = SqliteDatasetStore(tmp_path / "rm.sqlite", batch_size=100)
        record = _record(65020)
        store.add(record)
        assert store.remove(65020) is record  # buffered removal
        assert store.remove(65020) is None    # already tombstoned
        store.add(_record(65021))
        store.flush()
        removed = store.remove(65021)         # persisted removal
        assert removed is not None and removed.asn == 65021
        store.flush()
        assert len(store) == 0
        assert store.remove(65999) is None
        store.close()

    def test_auto_flush_at_batch_size_and_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        store = SqliteDatasetStore(
            tmp_path / "auto.sqlite", batch_size=3, metrics=metrics
        )
        for asn in range(65100, 65110):
            store.add(_record(asn))
        assert store.resident_high_water <= 3
        store.close()
        assert metrics.counter("asdb_store_flush_total").value() >= 3
        writes = metrics.counter(
            "asdb_store_writes_total", labelnames=("kind",)
        )
        assert writes.value(kind="upsert") == 10
        assert writes.value(kind="delete") == 0
        assert metrics.gauge("asdb_store_records").value() == 10

    def test_flush_emits_runlog_event(self, tmp_path):
        path = tmp_path / "run.ndjson"
        runlog = RunLog(str(path))
        store = SqliteDatasetStore(
            tmp_path / "log.sqlite", batch_size=100, runlog=runlog
        )
        store.add(_record(65200))
        store.flush()
        store.close()
        runlog.finish()
        events = [
            event for event in read_ledger(str(path))
            if event["event"] == "store.flush"
        ]
        assert events and events[0]["upserts"] == 1
        assert events[0]["deletes"] == 0

    def test_reopen_persists_records(self, tmp_path):
        path = tmp_path / "persist.sqlite"
        with SqliteDatasetStore(path) as store:
            store.add(_record(65300, slugs=("isp",)))
            store.add(_record(65301, slugs=("hosting",),
                              stage=Stage.MULTI_AGREE))
        reopened = SqliteDatasetStore(path)
        assert [r.asn for r in reopened] == [65300, 65301]
        assert reopened.get(65301).stage is Stage.MULTI_AGREE
        reopened.close()

    def test_format_marker_mismatch_rejected(self, tmp_path):
        path = tmp_path / "alien.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(
            "CREATE TABLE meta (key TEXT PRIMARY KEY, "
            "value TEXT NOT NULL);"
        )
        conn.execute(
            "INSERT INTO meta VALUES ('format', 'somebody/else/9')"
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="unsupported sqlite store"):
            SqliteDatasetStore(path)

    def test_bad_batch_size_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="batch_size"):
            SqliteDatasetStore(tmp_path / "bad.sqlite", batch_size=0)


class TestRecordRoundtripProperties:
    @given(
        asn=st.integers(min_value=1, max_value=2**32 - 1),
        slugs=st.lists(
            st.sampled_from(LAYER2_SLUGS), max_size=4, unique=True
        ),
        stage=st.sampled_from(list(Stage)),
        sources=st.lists(
            st.sampled_from(
                ["dnb", "crunchbase", "zvelo", "peeringdb", "ipinfo"]
            ),
            max_size=3,
            unique=True,
        ),
        domain=st.one_of(st.none(), st.just("org.example")),
        cache_keys=st.lists(st.text(max_size=20), max_size=3),
    )
    @settings(max_examples=150)
    def test_encode_decode_identity(
        self, asn, slugs, stage, sources, domain, cache_keys
    ):
        record = ASdbRecord(
            asn=asn,
            labels=LabelSet.from_layer2_slugs(slugs),
            stage=stage,
            sources=tuple(sources),
            domain=domain,
            cache_keys=tuple(cache_keys),
        )
        roundtripped = _decode_record(_encode_record(record))
        assert record_to_item(roundtripped) == record_to_item(record)
        # The sqlite roundtrip must preserve cache aliases: forget()
        # depends on them to invalidate every cached sibling.
        assert roundtripped.cache_keys == record.cache_keys

    @given(
        asns=st.lists(
            st.integers(min_value=1, max_value=100_000),
            min_size=1, max_size=40, unique=True,
        ),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_store_vs_memory_property(self, tmp_path_factory, asns, data):
        """Arbitrary add/remove sequences leave sqlite and the
        in-memory dataset observationally identical."""
        path = tmp_path_factory.mktemp("prop") / "prop.sqlite"
        store = SqliteDatasetStore(path, batch_size=5)
        memory = ASdbDataset()
        for asn in asns:
            slugs = data.draw(
                st.lists(
                    st.sampled_from(LAYER2_SLUGS),
                    max_size=3, unique=True,
                )
            )
            record = _record(asn, slugs=slugs)
            store.add(record)
            memory.add(record)
        for asn in asns:
            if data.draw(st.booleans()):
                store.remove(asn)
                memory.remove(asn)
        assert _items(store) == _items(memory)
        assert store.to_csv() == memory.to_csv()
        assert store.stage_counts() == memory.stage_counts()
        assert store.resident_high_water <= 5
        store.close()


class TestJsonStoreAndUrls:
    def test_json_store_flush_is_atomic_and_reloadable(self, tmp_path):
        path = tmp_path / "dataset.json"
        store = JsonDatasetStore(path)
        store.add(_record(65400, slugs=("isp",)))
        store.flush()
        assert not os.path.exists(str(path) + ".tmp")
        assert json.loads(path.read_text())["format"] == "asdb-repro/1"
        reopened = JsonDatasetStore(path)
        assert _items(reopened) == _items(store)

    def test_open_store_dispatch(self, tmp_path):
        sqlite_store = open_store(f"sqlite:{tmp_path / 'a.sqlite'}")
        assert isinstance(sqlite_store, SqliteDatasetStore)
        sqlite_store.close()
        bare = open_store(str(tmp_path / "b.db"))
        assert isinstance(bare, SqliteDatasetStore)
        bare.close()
        assert isinstance(
            open_store(f"json:{tmp_path / 'c.json'}"), JsonDatasetStore
        )
        assert isinstance(
            open_store(str(tmp_path / "d.json")), JsonDatasetStore
        )
        assert isinstance(open_store("memory:"), ASdbDataset)

    def test_open_store_rejects_unknown(self):
        with pytest.raises(StoreError, match="unrecognized store URL"):
            open_store("cassandra:nope")
        with pytest.raises(StoreError):
            open_store("plainpath")


class TestOpenStoreUrlParsing:
    """Only known schemes are schemes; colons in paths are just colons."""

    def test_colon_in_plain_path_is_not_a_scheme(self, tmp_path):
        run_dir = tmp_path / "runs" / "2026-08-08T12:00"
        run_dir.mkdir(parents=True)
        path = run_dir / "asdb.db"
        store = open_store(str(path))
        assert isinstance(store, SqliteDatasetStore)
        store.close()
        json_path = run_dir / "asdb.json"
        assert isinstance(open_store(str(json_path)), JsonDatasetStore)

    def test_sqlite_scheme_with_colon_in_path(self, tmp_path):
        run_dir = tmp_path / "12:30"
        run_dir.mkdir()
        store = open_store(f"sqlite:{run_dir / 'x.dat'}")
        assert isinstance(store, SqliteDatasetStore)
        store.close()

    def test_empty_rest_is_an_error_not_a_fallthrough(self):
        with pytest.raises(StoreError, match=r"sqlite: store URL needs a path"):
            open_store("sqlite:")
        with pytest.raises(StoreError, match=r"json: store URL needs a path"):
            open_store("json:")
        # the message shows what was actually tried
        with pytest.raises(StoreError, match=r"'sqlite:'"):
            open_store("sqlite:")

    def test_memory_takes_no_path(self):
        with pytest.raises(StoreError, match="memory: takes no path"):
            open_store("memory:junk")
        assert isinstance(open_store("memory"), ASdbDataset)
        assert isinstance(open_store("memory:"), ASdbDataset)

    def test_unrecognized_error_lists_what_was_tried(self):
        with pytest.raises(StoreError) as excinfo:
            open_store("cassandra:nope")
        message = str(excinfo.value)
        assert "'cassandra:nope'" in message
        assert "sqlite:" in message and "json:" in message
        assert ".sqlite" in message and ".json" in message


class TestJsonStoreDirtyTracking:
    """Read-only opens must never rewrite the file on close."""

    def _seed(self, path):
        store = JsonDatasetStore(path)
        store.add(_record(65400, slugs=("isp",)))
        store.close()

    def test_read_only_close_leaves_file_untouched(self, tmp_path):
        path = tmp_path / "dataset.json"
        self._seed(path)
        before_bytes = path.read_bytes()
        before_stat = os.stat(path)
        store = JsonDatasetStore(path)
        assert not store.dirty
        assert store.get(65400) is not None
        store.flush()
        store.close()
        assert path.read_bytes() == before_bytes
        after_stat = os.stat(path)
        assert after_stat.st_mtime_ns == before_stat.st_mtime_ns

    def test_add_marks_dirty_and_rewrites(self, tmp_path):
        path = tmp_path / "dataset.json"
        self._seed(path)
        store = JsonDatasetStore(path)
        store.add(_record(65401, slugs=("hosting",)))
        assert store.dirty
        store.close()
        assert not store.dirty
        reopened = JsonDatasetStore(path)
        assert len(reopened) == 2

    def test_noop_remove_stays_clean(self, tmp_path):
        path = tmp_path / "dataset.json"
        self._seed(path)
        before = path.read_bytes()
        store = JsonDatasetStore(path)
        assert store.remove(999999) is None
        assert not store.dirty
        store.close()
        assert path.read_bytes() == before
        store = JsonDatasetStore(path)
        assert store.remove(65400) is not None
        assert store.dirty
        store.close()
        assert path.read_bytes() != before

    def test_missing_file_still_created_on_close(self, tmp_path):
        path = tmp_path / "fresh.json"
        store = JsonDatasetStore(path)
        assert store.dirty
        store.close()
        assert json.loads(path.read_text())["format"] == "asdb-repro/1"


class TestShardedGeneration:
    def test_world_shards_are_deterministic_and_disjoint(self):
        config = WorldConfig(n_orgs=450, seed=77)
        shards_a = list(iter_world_shards(config, shard_orgs=200))
        shards_b = list(iter_world_shards(config, shard_orgs=200))
        assert len(shards_a) == 3
        seen_asns = set()
        org_ids = set()
        total_orgs = 0
        for shard, twin in zip(shards_a, shards_b):
            assert shard.asns() == twin.asns()
            shard_asns = set(shard.asns())
            assert not (shard_asns & seen_asns), "shards share ASNs"
            seen_asns |= shard_asns
            for org in shard.iter_organizations():
                org_ids.add(org.org_id)
                total_orgs += 1
        assert total_orgs == 450
        assert len(org_ids) == 450, "org ids collide across shards"

    def test_record_shards_stream_ascending_and_sized(self):
        shards = list(
            iter_record_shards(25_000, seed=3, shard_size=10_000)
        )
        assert [len(s) for s in shards] == [10_000, 10_000, 5_000]
        last = 0
        for shard in shards:
            for record in shard:
                assert record.asn > last
                last = record.asn
                assert record.labels
