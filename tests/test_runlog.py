"""Tests for the run ledger: repro.obs.runlog and its wiring through
the pipeline, both pool executors, and the CLI."""

import json

import pytest

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.cli import main
from repro.core.procpool import map_chunked
from repro.obs import (
    LEDGER_SCHEMA,
    NULL_RUNLOG,
    MetricsRegistry,
    NullRunLog,
    RunLog,
    config_digest,
    read_ledger,
    read_rss_kb,
)


def _events(path, kind=None):
    events = read_ledger(str(path))
    if kind is None:
        return events
    return [event for event in events if event["event"] == kind]


class TestRunLogCore:
    def test_run_start_is_first_event(self, tmp_path):
        path = tmp_path / "run.ndjson"
        log = RunLog(str(path), kind="test", config={"a": 1},
                     world={"n_orgs": 5})
        log.finish()
        events = _events(path)
        start = events[0]
        assert start["event"] == "run.start"
        assert start["schema"] == LEDGER_SCHEMA
        assert start["kind"] == "test"
        assert start["config"] == {"a": 1}
        assert start["config_digest"] == config_digest({"a": 1})
        assert start["world_digest"] == config_digest({"n_orgs": 5})
        assert events[-1]["event"] == "run.end"

    def test_envelope_is_monotone_and_run_scoped(self, tmp_path):
        path = tmp_path / "run.ndjson"
        log = RunLog(str(path))
        log.emit("custom", value=1)
        log.emit("custom", value=2)
        log.finish()
        events = _events(path)
        assert [event["seq"] for event in events] == list(
            range(len(events))
        )
        assert len({event["run"] for event in events}) == 1
        assert all(event["t"] >= 0 for event in events)

    def test_spans_nest_and_record_status(self, tmp_path):
        path = tmp_path / "run.ndjson"
        log = RunLog(str(path))
        with log.span("outer") as outer:
            outer.note(items=3)
            with log.span("inner", parent=outer.span_id) as inner:
                inner.set_status("done")
        log.finish()
        spans = {
            event["name"]: event for event in _events(path, "span")
        }
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["status"] == "done"
        assert spans["outer"]["attributes"] == {"items": 3}
        assert spans["outer"]["worker"]["kind"] == "main"

    def test_span_records_exception_status(self, tmp_path):
        path = tmp_path / "run.ndjson"
        log = RunLog(str(path))
        with pytest.raises(RuntimeError):
            with log.span("boom"):
                raise RuntimeError("nope")
        log.finish(status="error")
        (span,) = _events(path, "span")
        assert span["status"] == "error: RuntimeError"

    def test_finish_embeds_metrics_snapshot(self, tmp_path):
        path = tmp_path / "run.ndjson"
        registry = MetricsRegistry()
        registry.counter("demo_total", labelnames=("k",)).inc(2, k="x")
        log = RunLog(str(path))
        log.finish(status="ok", metrics=registry, extra="stanza")
        (end,) = _events(path, "run.end")
        assert end["status"] == "ok"
        assert end["duration"] >= 0
        assert end["extra"] == "stanza"
        assert "metrics" in end

    def test_failing_resource_provider_does_not_raise(self, tmp_path):
        path = tmp_path / "run.ndjson"
        log = RunLog(str(path))

        def bad():
            raise ValueError("broken provider")

        log.sample_resources(
            {"good": lambda: {"n": 1}, "bad": bad}, phase="test"
        )
        log.finish()
        (sample,) = _events(path, "resource.sample")
        assert sample["phase"] == "test"
        assert sample["good"] == {"n": 1}
        assert "ValueError" in sample["bad"]["error"]
        assert "cpu_seconds" in sample and "wall_seconds" in sample

    def test_torn_tail_is_skipped_on_read(self, tmp_path):
        path = tmp_path / "run.ndjson"
        log = RunLog(str(path))
        log.emit("custom", value=1)
        log.finish()
        with open(path, "a") as handle:
            handle.write('{"event": "torn", "ru')  # crash mid-write
        events = _events(path)
        assert events[-1]["event"] == "run.end"

    def test_config_digest_is_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_read_rss_never_raises(self):
        sample = read_rss_kb()
        assert set(sample) == {"rss_kb", "hwm_kb"}
        # On Linux /proc/self/status provides both.
        assert sample["rss_kb"] is None or sample["rss_kb"] > 0


class TestNullRunLog:
    def test_full_api_is_inert(self, tmp_path):
        null = NullRunLog()
        assert not null.enabled
        assert null.span_context("x") is None
        null.emit("anything", field=1)
        null.emit_span_record({"span_id": "x"})
        with null.span("noop") as span:
            span.set_status("ok").note(k=1)
        null.sample_resources({"c": lambda: {}}, phase="p")
        null.start_sampling(0.01)
        null.stop_sampling()
        null.finish(status="ok")
        assert list(tmp_path.iterdir()) == []

    def test_shared_instance_exists(self):
        assert isinstance(NULL_RUNLOG, NullRunLog)


def _double(payload, chunk):
    return [value * 2 for value in chunk]


class TestProcessPoolSpans:
    def test_chunk_spans_return_through_sink(self, tmp_path):
        log = RunLog(str(tmp_path / "run.ndjson"))
        sink = []
        results = map_chunked(
            _double, None, list(range(20)), workers=2, chunk_size=5,
            span_context=log.span_context("parent01"), span_sink=sink,
        )
        for record in sink:
            log.emit_span_record(record)
        log.finish()
        assert results == [value * 2 for value in range(20)]
        assert len(sink) == 4
        spans = _events(tmp_path / "run.ndjson", "span")
        assert {span["parent_id"] for span in spans} == {"parent01"}
        assert {span["name"] for span in spans} == {"procpool.chunk"}
        assert {span["worker"]["kind"] for span in spans} == {"process"}
        assert sum(
            span["attributes"]["items"] for span in spans
        ) == 20

    def test_inline_fallback_marks_main_worker(self, tmp_path):
        log = RunLog(str(tmp_path / "run.ndjson"))
        sink = []
        map_chunked(
            _double, None, [1, 2, 3], workers=1,
            span_context=log.span_context(None), span_sink=sink,
        )
        assert sink and all(
            record["worker"]["kind"] == "main" for record in sink
        )

    def test_no_context_produces_no_spans(self):
        sink = []
        results = map_chunked(
            _double, None, [1, 2, 3], workers=2, span_sink=sink
        )
        assert results == [2, 4, 6]
        assert sink == []


class TestPipelineLedger:
    @pytest.fixture(scope="class")
    def ledger(self, tmp_path_factory, small_world):
        path = tmp_path_factory.mktemp("ledger") / "run.ndjson"
        runlog = RunLog(str(path), kind="classify",
                        config={"workers": 3}, world={"seed": 101})
        registry = MetricsRegistry()
        built = build_asdb(
            small_world,
            SystemConfig(
                seed=5, train_ml=False, metrics=registry, trace=True,
                workers=3, runlog=runlog,
            ),
        )
        dataset = built.asdb.classify_all()
        runlog.finish(status="ok", metrics=registry)
        return read_ledger(str(path)), dataset, runlog.run_id

    def test_worker_spans_stitch_under_run(self, ledger):
        events, dataset, run_id = ledger
        assert all(event["run"] == run_id for event in events)
        spans = [e for e in events if e["event"] == "span"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        batch = by_name["classify_batch"]
        assert len(batch) == 1
        batch_id = batch[0]["span_id"]
        # Leader spans come from pool worker threads and parent to the
        # batch span.
        leaders = by_name["batch.leader"]
        assert leaders
        assert {span["parent_id"] for span in leaders} == {batch_id}
        assert "thread" in {
            span["worker"]["kind"] for span in leaders
        }
        # Phase spans are main-side children of the batch span.
        for phase in ("batch.front", "batch.siblings"):
            (span,) = by_name[phase]
            assert span["parent_id"] == batch_id
            assert span["worker"]["kind"] == "main"

    def test_every_trace_lands_in_ledger(self, ledger):
        events, dataset, _ = ledger
        traced = [e for e in events if e["event"] == "as.trace"]
        assert {event["asn"] for event in traced} == {
            record.asn for record in dataset
        }
        assert all(event["spans"] for event in traced)


class TestCliLedger:
    def test_classify_runlog_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "run.ndjson"
        code = main([
            "classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
            "--workers", "2", "--runlog", str(path),
        ])
        assert code == 0
        events = read_ledger(str(path))
        assert events[0]["event"] == "run.start"
        assert events[0]["kind"] == "classify"
        assert events[-1]["event"] == "run.end"
        assert events[-1]["status"] == "ok"
        assert events[-1]["metrics"]
        assert events[-1]["degraded"]["records"] == 0
        kinds = {event["event"] for event in events}
        assert {"span", "as.trace", "resource.sample"} <= kinds

    def test_output_is_byte_identical_without_runlog(
        self, tmp_path, capsys
    ):
        base = ["classify", "--n-orgs", "40", "--seed", "5", "--no-ml",
                "--workers", "2"]
        plain_csv = tmp_path / "plain.csv"
        assert main(base + ["--out", str(plain_csv)]) == 0
        plain_out = capsys.readouterr().out

        logged_csv = tmp_path / "logged.csv"
        assert main(base + [
            "--out", str(logged_csv),
            "--runlog", str(tmp_path / "run.ndjson"),
        ]) == 0
        logged_out = capsys.readouterr().out

        assert plain_csv.read_bytes() == logged_csv.read_bytes()
        assert plain_out.replace("plain.csv", "logged.csv") == logged_out

    def test_refresh_ledger_records_sweep_and_snapshot(self, tmp_path,
                                                       capsys):
        store = tmp_path / "store"
        assert main([
            "snapshot", "--store", str(store), "--n-orgs", "40",
            "--seed", "5", "--no-ml",
        ]) == 0
        path = tmp_path / "refresh.ndjson"
        code = main([
            "refresh", "--store", str(store), "--days", "30",
            "--runlog", str(path),
        ])
        assert code in (0, 1)  # exact-set check is orthogonal here
        events = read_ledger(str(path))
        assert events[0]["kind"] == "refresh"
        (sweep,) = [e for e in events if e["event"] == "sweep.report"]
        assert sweep["through_day"] == 30
        (saved,) = [e for e in events if e["event"] == "snapshot.saved"]
        assert saved["version"] == 2
        assert saved["kind"] == "delta"
        (end,) = [e for e in events if e["event"] == "run.end"]
        assert end["degraded"]["total"] > 0
        assert end["reclassified"] == sweep["reclassified"]
