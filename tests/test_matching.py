"""Tests for similarity, domain selection, and entity resolution."""

import pytest
from hypothesis import given, strategies as st

from repro.datasources import Crunchbase, DunBradstreet, Zvelo
from repro.matching import (
    DomainFrequencyIndex,
    EntityResolver,
    choose_domain,
    jaccard,
    lcs_ratio,
    name_similarity,
    select_least_common,
    select_most_similar,
    select_random,
)
from repro.web import Page, WebUniverse, Website


class TestSimilarity:
    def test_jaccard_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_jaccard_empty(self):
        assert jaccard(set(), set()) == 1.0
        assert jaccard({"a"}, set()) == 0.0

    def test_lcs_identical(self):
        assert lcs_ratio("fiberlink", "fiberlink") == 1.0

    def test_lcs_empty(self):
        assert lcs_ratio("", "abc") == 0.0

    def test_name_similarity_reordered_tokens(self):
        assert name_similarity(
            "Communications FiberLink", "FiberLink Communications"
        ) == 1.0

    def test_name_similarity_legal_suffix_ignored(self):
        assert name_similarity("Acme Hosting LLC", "Acme Hosting Inc") == 1.0

    def test_name_similarity_as_handle(self):
        # AS handles concatenate and truncate; similarity stays high
        # against the right org and low against an unrelated one.
        right = name_similarity("FIBERLINK-AS", "FiberLink Communications")
        wrong = name_similarity("FIBERLINK-AS", "First National Bank")
        assert right > wrong

    @given(st.text(max_size=25), st.text(max_size=25))
    def test_similarity_bounded_and_symmetric(self, a, b):
        score = name_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(name_similarity(b, a))


def _web_with_titles(titles):
    web = WebUniverse()
    for domain, title in titles.items():
        web.add(Website(domain=domain, homepage=Page(title=title, text="")))
    return web


class TestDomainSelection:
    CANDIDATES = ["acmehosting.com", "gmail.com", "bigisp.net"]

    def test_email_providers_removed(self):
        chosen = select_random(self.CANDIDATES, seed_material="x")
        assert chosen != "gmail.com"

    def test_all_providers_yields_none(self):
        assert select_random(["gmail.com", "yahoo.com"]) is None
        assert select_least_common(
            ["gmail.com"], DomainFrequencyIndex()
        ) is None

    def test_random_deterministic_per_seed(self):
        a = select_random(self.CANDIDATES, seed_material="AS1")
        b = select_random(self.CANDIDATES, seed_material="AS1")
        assert a == b

    def test_least_common_prefers_rare(self):
        index = DomainFrequencyIndex.from_candidates(
            [["bigisp.net"]] * 150 + [["acmehosting.com"]]
        )
        chosen = select_least_common(
            ["bigisp.net", "acmehosting.com"], index
        )
        assert chosen == "acmehosting.com"

    def test_most_similar_uses_homepage_title(self):
        web = _web_with_titles(
            {
                "acmehosting.com": "Acme Hosting - Home",
                "bigisp.net": "BigISP Networks - Home",
            }
        )
        chosen = select_most_similar(
            ["acmehosting.com", "bigisp.net"], "ACME-HOSTING-AS", web
        )
        assert chosen == "acmehosting.com"

    def test_most_similar_falls_back_to_domain_string(self):
        # Unreachable sites: the domain itself is compared (Table 5).
        web = WebUniverse()
        chosen = select_most_similar(
            ["acmehosting.com", "unrelated.org"], "ACME-HOSTING-AS", web
        )
        assert chosen == "acmehosting.com"

    def test_choose_domain_full_algorithm(self):
        web = _web_with_titles(
            {"acmehosting.com": "Acme Hosting - Home"}
        )
        index = DomainFrequencyIndex.from_candidates(
            [["bigisp.net"]] * 150 + [["acmehosting.com"]] * 2
        )
        chosen = choose_domain(
            ["gmail.com", "bigisp.net", "acmehosting.com"],
            "ACME-HOSTING-AS",
            web,
            index,
        )
        assert chosen == "acmehosting.com"

    def test_choose_domain_keeps_common_when_no_rare(self):
        # Step 3 only filters when at least one rare candidate exists.
        web = WebUniverse()
        index = DomainFrequencyIndex.from_candidates(
            [["bigisp.net"]] * 150
        )
        assert choose_domain(
            ["bigisp.net"], "BIGISP-AS", web, index
        ) == "bigisp.net"

    def test_choose_domain_empty(self):
        assert choose_domain([], "X-AS", WebUniverse()) is None


class TestResolver:
    @pytest.fixture(scope="class")
    def resolver(self, medium_world):
        world = medium_world
        index = DomainFrequencyIndex.from_candidates(
            world.registry.contact(asn).candidate_domains
            for asn in world.asns()
        )
        sources = [
            DunBradstreet(world),
            Crunchbase(world),
            Zvelo(world),
        ]
        return EntityResolver(world.web, index, sources)

    def test_resolution_accuracy(self, medium_world, resolver):
        """Most-similar domain selection should be ~91% accurate among
        ASes whose org domain appears in WHOIS (Table 5)."""
        world = medium_world
        hits = total = 0
        for asn in world.asns():
            org = world.org_of_asn(asn)
            contact = world.registry.contact(asn)
            if org.domain is None:
                continue
            if org.domain not in contact.candidate_domains:
                continue
            total += 1
            chosen = resolver.choose_domain(
                contact, world.ases[asn].as_name
            )
            hits += chosen == org.domain
        assert total > 100
        assert hits / total >= 0.85

    def test_resolve_produces_matches(self, medium_world, resolver):
        world = medium_world
        resolved_counts = []
        for asn in world.asns()[:100]:
            contact = world.registry.contact(asn)
            resolved = resolver.resolve(
                contact, world.ases[asn].as_name
            )
            resolved_counts.append(len(resolved.matches))
        assert max(resolved_counts) >= 2  # multiple sources match

    def test_low_confidence_dnb_rejected(self, medium_world):
        world = medium_world
        index = DomainFrequencyIndex()
        dnb = DunBradstreet(world)
        strict = EntityResolver(
            world.web, index, [dnb], dnb_confidence_threshold=10
        )
        lax = EntityResolver(
            world.web, index, [dnb], dnb_confidence_threshold=1
        )
        strict_matches = lax_matches = 0
        for asn in world.asns()[:200]:
            contact = world.registry.contact(asn)
            as_name = world.ases[asn].as_name
            strict_matches += bool(
                strict.resolve(contact, as_name).matches
            )
            lax_matches += bool(lax.resolve(contact, as_name).matches)
        assert strict_matches < lax_matches

    def test_domain_mismatch_rejection_reduces_entity_disagreement(
        self, medium_world
    ):
        world = medium_world
        index = DomainFrequencyIndex.from_candidates(
            world.registry.contact(asn).candidate_domains
            for asn in world.asns()
        )
        sources = [DunBradstreet(world), Crunchbase(world)]
        with_reject = EntityResolver(world.web, index, sources)
        without_reject = EntityResolver(
            world.web, index, sources, reject_domain_mismatch=False
        )

        def wrong_entity_rate(resolver):
            wrong = total = 0
            for asn in world.asns():
                org = world.org_of_asn(asn)
                contact = world.registry.contact(asn)
                resolved = resolver.resolve(
                    contact, world.ases[asn].as_name
                )
                for match in resolved.matches.values():
                    if not match.entry.org_id:
                        continue
                    total += 1
                    wrong += match.entry.org_id != org.org_id
            return wrong / max(total, 1)

        assert wrong_entity_rate(with_reject) <= wrong_entity_rate(
            without_reject
        )
