"""Unit tests for the from-scratch ML stack components."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.ml import (
    CountVectorizer,
    SGDClassifier,
    TfidfTransformer,
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc,
    tokenize,
)


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_min_length(self):
        assert tokenize("a bb ccc") == ["bb", "ccc"]
        assert tokenize("a bb ccc", min_length=3) == ["ccc"]

    def test_numbers_kept(self):
        assert "42" in tokenize("route 42")

    def test_empty(self):
        assert tokenize("") == []


class TestCountVectorizer:
    DOCS = [
        "hosting cloud hosting server",
        "bank loan bank",
        "cloud bank",
    ]

    def test_fit_transform_shape(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(self.DOCS)
        assert matrix.shape == (3, len(vectorizer.vocabulary_))

    def test_counts_correct(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(self.DOCS).toarray()
        hosting_col = vectorizer.vocabulary_["hosting"]
        assert matrix[0, hosting_col] == 2
        assert matrix[1, hosting_col] == 0

    def test_min_df_prunes(self):
        vectorizer = CountVectorizer(min_df=2)
        vectorizer.fit(self.DOCS)
        assert "loan" not in vectorizer.vocabulary_   # appears in 1 doc
        assert "cloud" in vectorizer.vocabulary_      # appears in 2 docs

    def test_max_features_caps(self):
        vectorizer = CountVectorizer(max_features=2)
        vectorizer.fit(self.DOCS)
        assert len(vectorizer.vocabulary_) == 2
        # Highest total counts win: bank(3), then the hosting/cloud tie
        # (2 each) breaks lexicographically -> cloud.
        assert set(vectorizer.vocabulary_) == {"bank", "cloud"}

    def test_unknown_tokens_ignored_at_transform(self):
        vectorizer = CountVectorizer()
        vectorizer.fit(self.DOCS)
        matrix = vectorizer.transform(["zebra quantum"])
        assert matrix.nnz == 0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CountVectorizer().transform(["x"])

    def test_feature_names_ordered(self):
        vectorizer = CountVectorizer()
        vectorizer.fit(self.DOCS)
        names = vectorizer.feature_names()
        assert [vectorizer.vocabulary_[n] for n in names] == list(
            range(len(names))
        )

    def test_deterministic(self):
        a = CountVectorizer().fit(self.DOCS).vocabulary_
        b = CountVectorizer().fit(self.DOCS).vocabulary_
        assert a == b


class TestTfidf:
    def test_common_words_downweighted(self):
        docs = ["the cat", "the dog", "the fish"]
        vectorizer = CountVectorizer()
        counts = vectorizer.fit_transform(docs)
        tfidf = TfidfTransformer(normalize=False)
        weighted = tfidf.fit_transform(counts).toarray()
        the_col = vectorizer.vocabulary_["the"]
        cat_col = vectorizer.vocabulary_["cat"]
        assert weighted[0, the_col] < weighted[0, cat_col]

    def test_l2_normalized_rows(self):
        docs = ["hosting cloud server", "bank loan"]
        counts = CountVectorizer().fit_transform(docs)
        weighted = TfidfTransformer().fit_transform(counts)
        norms = np.sqrt(weighted.multiply(weighted).sum(axis=1)).A.ravel()
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_zero_row_survives_normalization(self):
        vectorizer = CountVectorizer()
        vectorizer.fit(["hosting cloud"])
        counts = vectorizer.transform(["zebra"])
        tfidf = TfidfTransformer()
        tfidf.fit(vectorizer.transform(["hosting cloud"]))
        weighted = tfidf.transform(counts)
        assert weighted.nnz == 0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfTransformer().transform(sparse.csr_matrix((1, 1)))

    def test_feature_mismatch_raises(self):
        counts = CountVectorizer().fit_transform(["aa bb cc"])
        tfidf = TfidfTransformer().fit(counts)
        with pytest.raises(ValueError):
            tfidf.transform(sparse.csr_matrix((1, counts.shape[1] + 3)))


def _separable_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(float)
    return sparse.csr_matrix(X), y


class TestSGD:
    @pytest.mark.parametrize("loss", ["hinge", "log"])
    def test_learns_separable_data(self, loss):
        X, y = _separable_data()
        model = SGDClassifier(loss=loss, epochs=30, seed=1)
        model.fit(X, y)
        assert accuracy(y.astype(bool), model.predict(X)) >= 0.92

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            SGDClassifier(loss="squared")

    def test_predict_before_fit_raises(self):
        X, _ = _separable_data()
        with pytest.raises(RuntimeError):
            SGDClassifier().predict(X)

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            SGDClassifier().fit(sparse.csr_matrix((0, 3)), [])

    def test_sample_count_mismatch_raises(self):
        X, y = _separable_data()
        with pytest.raises(ValueError):
            SGDClassifier().fit(X, y[:-1])

    def test_proba_in_unit_interval(self):
        X, y = _separable_data()
        model = SGDClassifier(loss="log").fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0.0) and np.all(proba <= 1.0)

    def test_deterministic_given_seed(self):
        X, y = _separable_data()
        a = SGDClassifier(seed=7).fit(X, y)
        b = SGDClassifier(seed=7).fit(X, y)
        np.testing.assert_array_equal(a.coef_, b.coef_)
        assert a.intercept_ == b.intercept_

    def test_balanced_class_weight_helps_minority_recall(self):
        rng = np.random.default_rng(3)
        n_majority, n_minority = 300, 15
        X_majority = rng.normal(loc=0.0, size=(n_majority, 4))
        X_minority = rng.normal(loc=1.2, size=(n_minority, 4))
        X = sparse.csr_matrix(np.vstack([X_majority, X_minority]))
        y = np.array([0.0] * n_majority + [1.0] * n_minority)
        plain = SGDClassifier(seed=0).fit(X, y)
        balanced = SGDClassifier(seed=0, class_weight="balanced").fit(X, y)
        truth = y.astype(bool)
        assert recall(truth, balanced.predict(X)) >= recall(
            truth, plain.predict(X)
        )


class TestMetrics:
    def test_confusion_matrix_counts(self):
        cm = confusion_matrix(
            [True, True, False, False], [True, False, True, False]
        )
        assert (cm.tp, cm.fn, cm.fp, cm.tn) == (1, 1, 1, 1)
        assert cm.accuracy == 0.5
        assert cm.false_positive_rate == 0.25
        assert cm.false_negative_rate == 0.25

    def test_precision_recall_f1(self):
        truth = [True, True, True, False]
        predicted = [True, True, False, False]
        assert precision(truth, predicted) == 1.0
        assert recall(truth, predicted) == pytest.approx(2 / 3)
        assert f1_score(truth, predicted) == pytest.approx(0.8)

    def test_empty_denominators(self):
        assert precision([False], [False]) == 0.0
        assert recall([False], [False]) == 0.0

    def test_auc_perfect(self):
        assert roc_auc([False, False, True, True], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_auc_inverted(self):
        assert roc_auc([True, True, False, False], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_auc_random_ties(self):
        assert roc_auc([True, False], [0.5, 0.5]) == 0.5

    def test_auc_degenerate_single_class(self):
        assert roc_auc([True, True], [0.1, 0.9]) == 0.5

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([True], [True, False])
        with pytest.raises(ValueError):
            roc_auc([True], [0.5, 0.6])

    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(0, 1)), min_size=2,
            max_size=50,
        )
    )
    def test_auc_bounded(self, pairs):
        truth = [p[0] for p in pairs]
        scores = [p[1] for p in pairs]
        assert 0.0 <= roc_auc(truth, scores) <= 1.0

    @given(
        st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1,
                 max_size=50)
    )
    def test_accuracy_bounded(self, pairs):
        truth = [p[0] for p in pairs]
        predicted = [p[1] for p in pairs]
        assert 0.0 <= accuracy(truth, predicted) <= 1.0
