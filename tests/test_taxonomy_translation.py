"""Tests for NAICS codes and the NAICS -> NAICSlite translation layer."""

import pytest
from hypothesis import given, strategies as st

from repro.taxonomy import naics, naicslite, translation


class TestNAICSSubset:
    def test_lookup_known_code(self):
        entry = naics.lookup("517311")
        assert entry.title == "Wired Telecommunications Carriers"
        assert entry.sector == "51"
        assert entry.subsector == "517"
        assert entry.industry_group == "5173"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            naics.lookup("000000")

    def test_exists(self):
        assert naics.exists("518210")
        assert not naics.exists("999999")

    def test_all_codes_are_six_digits(self):
        for entry in naics.ALL_CODES:
            assert len(entry.code) == 6
            assert entry.code.isdigit()

    def test_all_codes_unique(self):
        codes = [entry.code for entry in naics.ALL_CODES]
        assert len(set(codes)) == len(codes)

    def test_all_sectors_have_titles(self):
        for entry in naics.ALL_CODES:
            assert entry.sector in naics.SECTOR_TITLES

    def test_codes_in_sector(self):
        info = naics.codes_in_sector("51")
        assert all(entry.sector == "51" for entry in info)
        assert naics.lookup("517311") in info

    def test_paper_example_codes_present(self):
        # AS56885 (SUMIDA Romania) was labeled 335911 and 334416 by the two
        # gold-standard labelers (Section 3.2).
        assert naics.exists("335911")
        assert naics.exists("334416")


class TestTranslation:
    def test_every_subset_code_translates(self):
        for entry in naics.ALL_CODES:
            labels = translation.translate_naics(entry.code)
            assert labels, f"{entry.code} produced no NAICSlite labels"

    def test_ambiguous_codes_are_multivalued(self):
        # Section 3.3: D&B uses these three codes interchangeably for both
        # ISPs and hosting providers.
        for code in translation.AMBIGUOUS_TECH_CODES:
            labels = translation.translate_naics(code)
            slugs = labels.layer2_slugs()
            assert "isp" in slugs
            assert "hosting" in slugs

    def test_hosting_and_data_processing_share_518210(self):
        # NAICS makes "data processing" and "hosting provider" one code.
        labels = translation.translate_naics("518210")
        assert "hosting" in labels.layer2_slugs()

    def test_isp_and_phone_share_a_code(self):
        # NAICS combines ISPs and phone providers (517919 reaches both).
        labels = translation.translate_naics("517919")
        slugs = labels.layer2_slugs()
        assert "isp" in slugs and "phone_provider" in slugs

    def test_unambiguous_nontech_codes(self):
        assert translation.translate_naics("522110").layer2_slugs() == {
            "banks"
        }
        assert translation.translate_naics("611310").layer2_slugs() == {
            "university"
        }
        assert translation.translate_naics("221122").layer2_slugs() == {
            "electric"
        }

    def test_prefix_fallback_industry_group(self):
        # 517399 isn't in the exact table; the 5173 prefix rule catches it.
        labels = translation.translate_naics("517399")
        assert "isp" in labels.layer2_slugs()

    def test_prefix_fallback_subsector(self):
        # 522390 "Other Activities Related to Credit Intermediation".
        labels = translation.translate_naics("522390")
        assert "banks" in labels.layer2_slugs()

    def test_sector_fallback_layer1_only(self):
        # 541921 "Photography Studios" has no exact/prefix rule; falls back
        # to sector 54 -> service (layer 1 only).
        labels = translation.translate_naics("541921")
        assert labels.layer1_slugs() == {"service"}
        assert not labels.has_layer2

    def test_unknown_sector_yields_empty(self):
        assert not translation.translate_naics("990000")

    def test_multi_code_union(self):
        labels = translation.translate_naics_codes(["522110", "611310"])
        assert labels.layer2_slugs() == {"banks", "university"}

    def test_all_layer2_reachable_from_some_naics_code(self):
        reachable = set()
        for entry in naics.ALL_CODES:
            reachable |= translation.translate_naics(
                entry.code
            ).layer2_slugs()
        all_slugs = {sub.slug for sub in naicslite.ALL_LAYER2}
        missing = all_slugs - reachable
        # Residual "other" buckets without their own NAICS codes are OK.
        assert all(slug.endswith("other") or slug in {
            "edu_software", "streaming", "ixp", "security", "search_engine",
        } or not missing for slug in missing), missing

    def test_candidates_for_layer2_inverse(self):
        for slug in ("isp", "hosting", "banks", "university", "electric"):
            for code in translation.naics_candidates_for_layer2(slug):
                assert slug in translation.translate_naics(
                    code
                ).layer2_slugs()


@given(st.text(alphabet="0123456789", min_size=6, max_size=6))
def test_translation_never_crashes_on_any_code(code):
    labels = translation.translate_naics(code)
    for label in labels:
        # Every produced label refers to a real NAICSlite category.
        naicslite.layer1_by_slug(label.layer1)
