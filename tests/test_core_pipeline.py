"""Integration tests for the full ASdb pipeline (Figure 4)."""

import pytest

from repro import SystemConfig, build_asdb
from repro.core import Stage
from repro.taxonomy import LabelSet


@pytest.fixture(scope="module")
def built(medium_world):
    return build_asdb(medium_world, SystemConfig(seed=1))


@pytest.fixture(scope="module")
def dataset(built):
    return built.asdb.classify_all()


class TestSystemLevel:
    def test_every_as_gets_a_record(self, medium_world, dataset):
        assert len(dataset) == len(medium_world.asns())

    def test_coverage_band(self, dataset):
        # Paper: 96% of ASes receive a classification.
        assert dataset.coverage() >= 0.85

    def test_layer1_accuracy_band(self, medium_world, dataset):
        hits = total = 0
        for record in dataset:
            if not record.labels:
                continue
            total += 1
            hits += record.labels.overlaps_layer1(
                medium_world.truth(record.asn)
            )
        assert hits / total >= 0.85  # paper: 89-97% across datasets

    def test_layer2_accuracy_band(self, medium_world, dataset):
        hits = total = 0
        for record in dataset:
            truth = medium_world.truth(record.asn)
            if not record.labels.has_layer2 or not truth.has_layer2:
                continue
            total += 1
            hits += record.labels.overlaps_layer2(truth)
        assert hits / total >= 0.70  # paper: 75-87%

    def test_all_stages_exercised(self, dataset):
        stages = set(dataset.stage_counts())
        for stage in (
            Stage.MATCHED_BY_ASN,
            Stage.CLASSIFIER,
            Stage.ONE_SOURCE,
            Stage.MULTI_AGREE,
            Stage.MULTI_DISAGREE,
            Stage.ZERO_SOURCES,
            Stage.CACHED,
        ):
            assert stage in stages, stage

    def test_multi_agree_is_most_accurate_stage(self, medium_world, dataset):
        # Table 8: >=2-sources-agree reaches ~100% accuracy; no-agreement
        # is the weakest stage.
        def stage_accuracy(stage):
            hits = total = 0
            for record in dataset:
                if record.stage is not stage or not record.labels:
                    continue
                total += 1
                hits += record.labels.overlaps_layer1(
                    medium_world.truth(record.asn)
                )
            return hits / total if total else None

        agree = stage_accuracy(Stage.MULTI_AGREE)
        disagree = stage_accuracy(Stage.MULTI_DISAGREE)
        assert agree is not None and disagree is not None
        assert agree >= disagree

    def test_asn_stage_is_isp_only(self, dataset):
        # Only PeeringDB ISP labels are high-confidence ASN matches.
        for record in dataset:
            if record.stage is Stage.MATCHED_BY_ASN:
                assert "isp" in record.labels.layer2_slugs()

    def test_zero_source_records_unclassified(self, dataset):
        for record in dataset:
            if record.stage is Stage.ZERO_SOURCES:
                assert not record.classified


class TestCacheBehavior:
    def test_sibling_ases_share_classification(self, medium_world, dataset):
        shared = 0
        for org_id in sorted(medium_world.organizations):
            asns = medium_world.asns_of_org(org_id)
            if len(asns) < 2:
                continue
            records = [dataset.get(asn) for asn in asns]
            labeled = [r for r in records if r.classified]
            if len(labeled) >= 2:
                if all(r.labels == labeled[0].labels for r in labeled):
                    shared += 1
        assert shared > 0

    def test_cached_stage_present_for_multi_as_orgs(self, dataset):
        assert dataset.stage_counts().get(Stage.CACHED, 0) > 0

    def test_cache_disabled_removes_cached_stage(self, medium_world):
        built = build_asdb(
            medium_world, SystemConfig(seed=1, use_cache=False)
        )
        for asn in medium_world.asns()[:80]:
            built.asdb.classify(asn)
        assert Stage.CACHED not in built.asdb.dataset.stage_counts()

    def test_reclassify_invalidates_cache(self, medium_world):
        built = build_asdb(medium_world, SystemConfig(seed=1))
        asn = medium_world.asns()[0]
        first = built.asdb.classify(asn)
        again = built.asdb.reclassify(asn)
        assert again.stage is not Stage.CACHED


class TestReclassifyInvalidation:
    """Satellite coverage for ASdb.reclassify key invalidation."""

    @staticmethod
    def _classify_until_cached(asdb, world):
        """Classify ASes in order until a sibling lands on the cache."""
        for asn in world.asns():
            record = asdb.classify(asn)
            if record.stage is Stage.CACHED:
                return record
        pytest.fail("world produced no cached sibling record")

    @pytest.fixture()
    def fresh(self, medium_world):
        return build_asdb(
            medium_world, SystemConfig(seed=1, train_ml=False)
        )

    def test_every_cache_key_and_org_key_invalidated(
        self, medium_world, fresh
    ):
        asdb = fresh.asdb
        old = self._classify_until_cached(asdb, medium_world)
        assert old.cache_keys, "cached record should carry its keys"
        assert old.org_key is not None

        invalidated = []
        inherited = asdb.cache.invalidate
        inherited_many = asdb.cache.invalidate_keys

        def recording_invalidate(key):
            invalidated.append(key)
            return inherited(key)

        def recording_invalidate_keys(keys):
            keys = tuple(keys)
            invalidated.extend(keys)
            return inherited_many(keys)

        asdb.cache.invalidate = recording_invalidate
        asdb.cache.invalidate_keys = recording_invalidate_keys
        try:
            asdb.reclassify(old.asn)
        finally:
            asdb.cache.invalidate = inherited
            asdb.cache.invalidate_keys = inherited_many

        assert set(old.cache_keys) <= set(invalidated)
        assert old.org_key in invalidated

    def test_sibling_re_resolves_fresh_after_reclassify(
        self, medium_world, fresh
    ):
        asdb = fresh.asdb
        old = self._classify_until_cached(asdb, medium_world)
        fresh_record = asdb.reclassify(old.asn)
        assert fresh_record.stage is not Stage.CACHED
        assert asdb.dataset.get(old.asn) is not old
        assert asdb.dataset.get(old.asn).stage is fresh_record.stage

    def test_cache_repopulated_after_reclassify(
        self, medium_world, fresh
    ):
        asdb = fresh.asdb
        old = self._classify_until_cached(asdb, medium_world)
        fresh_record = asdb.reclassify(old.asn)
        for key in fresh_record.cache_keys:
            assert asdb.cache.get(key) is not None

    def test_reclassify_unclassified_asn_just_classifies(
        self, medium_world, fresh
    ):
        asdb = fresh.asdb
        asn = medium_world.asns()[0]
        record = asdb.reclassify(asn)
        assert asdb.dataset.get(asn) == record


class TestDatasetStore:
    def test_csv_export_shape(self, dataset):
        csv_text = dataset.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "ASN,Layer1,Layer2,Sources,Stage"
        assert len(lines) > len(dataset)  # multi-label rows expand

    def test_category_histogram_dominated_by_tech(self, dataset):
        histogram = dataset.category_histogram()
        assert max(histogram, key=histogram.get) == "computer_and_it"

    def test_asns_in_layer1(self, dataset):
        asns = dataset.asns_in_layer1("computer_and_it")
        assert asns
        for asn in asns[:10]:
            record = dataset.get(asn)
            assert "computer_and_it" in record.labels.layer1_slugs()

    def test_get_missing_returns_none(self, dataset):
        assert dataset.get(4_199_999_999) is None


class TestAblationKnobs:
    def test_no_ml_reduces_classifier_stage(self, medium_world):
        built = build_asdb(
            medium_world, SystemConfig(seed=1, train_ml=False)
        )
        for asn in medium_world.asns()[:150]:
            built.asdb.classify(asn)
        counts = built.asdb.dataset.stage_counts()
        assert Stage.CLASSIFIER not in counts

    def test_lax_dnb_threshold_increases_matches(self, medium_world):
        strict = build_asdb(
            medium_world,
            SystemConfig(seed=1, train_ml=False,
                         dnb_confidence_threshold=10),
        )
        lax = build_asdb(
            medium_world,
            SystemConfig(seed=1, train_ml=False,
                         dnb_confidence_threshold=1),
        )
        sample = medium_world.asns()[:200]
        for asn in sample:
            strict.asdb.classify(asn)
            lax.asdb.classify(asn)
        strict_zero = strict.asdb.dataset.stage_counts().get(
            Stage.ZERO_SOURCES, 0
        )
        lax_zero = lax.asdb.dataset.stage_counts().get(
            Stage.ZERO_SOURCES, 0
        )
        assert lax_zero <= strict_zero
