"""Unit tests for the per-experiment harness functions."""

import pytest

from repro import SystemConfig, build_asdb
from repro.evaluation import (
    build_gold_standard,
    category_accuracy_rows,
    figure2_dnb_confidence,
    pairwise_precision_rows,
    table5_entity_resolution,
    table7_coarse_f1,
)
from repro.evaluation.metrics import Fraction, evaluate_stages
from repro.taxonomy import LabelSet


@pytest.fixture(scope="module")
def setup(medium_world):
    gold = build_gold_standard(medium_world, size=100, seed=5)
    built = build_asdb(
        medium_world,
        SystemConfig(seed=2,
                     exclude_asns_from_training=tuple(gold.asns())),
    )
    dataset = built.asdb.classify_all()
    return medium_world, gold, built, dataset


class TestFigure2Harness:
    def test_buckets_sorted_and_bounded(self, setup):
        world, gold, built, _ = setup
        buckets = figure2_dnb_confidence(built.dnb, world, gold)
        codes = [bucket.code for bucket in buckets]
        assert codes == sorted(codes)
        for bucket in buckets:
            assert 1 <= bucket.code <= 10
            assert 0.0 <= bucket.accuracy.value <= 1.0


class TestTable5Harness:
    def test_rows_complete(self, setup):
        world, gold, built, _ = setup
        rows = table5_entity_resolution(
            world, gold, built.dnb, built.crunchbase, built.ipinfo,
            built.frequency_index,
        )
        targets = {(row.target, row.algorithm) for row in rows}
        assert ("D&B", "Conf >=1") in targets
        assert ("D&B", "Conf >=6") in targets
        assert ("Crunchbase", "Domain") in targets
        assert ("Domain", "Most Similar") in targets
        assert ("Domain", "IPinfo") in targets

    def test_outcome_fractions_sum_to_one(self, setup):
        world, gold, built, _ = setup
        rows = table5_entity_resolution(
            world, gold, built.dnb, built.crunchbase, built.ipinfo,
            built.frequency_index,
        )
        for row in rows:
            total = row.correct + row.incorrect + row.missing
            assert total == pytest.approx(1.0, abs=1e-9)


class TestTable7Harness:
    def test_all_classes_reported(self, setup):
        world, gold, built, dataset = setup
        result = table7_coarse_f1(
            dataset, built.ipinfo, built.peeringdb, gold
        )
        assert set(result) == {"business", "isp", "hosting", "education"}
        for scores in result.values():
            for system in ("asdb", "ipinfo", "peeringdb"):
                assert 0.0 <= scores[system] <= 1.0

    def test_counts_cover_dataset(self, setup):
        world, gold, built, dataset = setup
        result = table7_coarse_f1(
            dataset, built.ipinfo, built.peeringdb, gold
        )
        total = sum(scores["n"] for scores in result.values())
        assert total == len(gold.labeled_entries())


class TestCategoryRows:
    def test_fractions_keyed_by_expert_layer1(self, setup):
        world, gold, _, dataset = setup
        rows = category_accuracy_rows(
            world,
            gold,
            lambda asn: (
                dataset.get(asn).labels if dataset.get(asn) else LabelSet()
            ),
        )
        for slug, fraction in rows.items():
            assert isinstance(fraction, Fraction)
            assert fraction.hits <= fraction.total

    def test_empty_classifier_yields_nothing(self, setup):
        world, gold, _, _ = setup
        rows = category_accuracy_rows(
            world, gold, lambda asn: LabelSet()
        )
        assert rows == {}


class TestPairwiseRows:
    def test_pairs_and_triple_present(self, setup):
        world, gold, built, _ = setup
        sources = {
            "dnb": built.dnb,
            "zvelo": built.zvelo,
            "crunchbase": built.crunchbase,
        }
        rows = pairwise_precision_rows(world, gold, sources)
        assert ("dnb",) in rows
        assert ("dnb", "zvelo") in rows
        assert ("crunchbase", "dnb", "zvelo") in rows

    def test_pair_coverage_never_exceeds_single(self, setup):
        world, gold, built, _ = setup
        sources = {"dnb": built.dnb, "zvelo": built.zvelo}
        rows = pairwise_precision_rows(world, gold, sources)
        assert rows[("dnb", "zvelo")].total <= rows[("dnb",)].total
        assert rows[("dnb", "zvelo")].total <= rows[("zvelo",)].total


class TestEvaluateStagesEdgeCases:
    def test_missing_records_do_not_crash(self, setup):
        from repro.core import ASdbDataset

        world, gold, _, _ = setup
        breakdown = evaluate_stages(ASdbDataset(), gold)
        assert breakdown.overall_l1_coverage.hits == 0
        assert breakdown.overall_l1_accuracy.total == 0

    def test_coverage_denominator_is_labeled_entries(self, setup):
        world, gold, _, dataset = setup
        breakdown = evaluate_stages(dataset, gold)
        assert breakdown.overall_l1_coverage.total == len(
            gold.labeled_entries()
        )
