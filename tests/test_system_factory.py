"""Tests for the system factory (repro.system)."""

import pytest

from repro import SystemConfig, build_asdb
from repro.system import build_sources


class TestBuildSources:
    def test_five_sources(self, small_world):
        sources = build_sources(small_world)
        names = [source.name for source in sources]
        assert names == ["dnb", "crunchbase", "zvelo", "peeringdb",
                         "ipinfo"]

    def test_seed_changes_directories(self, small_world):
        a = build_sources(small_world, seed=1)[0]
        b = build_sources(small_world, seed=2)[0]
        # Different seeds change which orgs are covered.
        coverage_a = {
            org.org_id
            for org in small_world.iter_organizations()
            if a.lookup_by_org(org.org_id)
        }
        coverage_b = {
            org.org_id
            for org in small_world.iter_organizations()
            if b.lookup_by_org(org.org_id)
        }
        assert coverage_a != coverage_b


class TestBuildAsdb:
    def test_components_wired(self, small_world):
        built = build_asdb(small_world, SystemConfig(seed=1))
        assert built.asdb is not None
        assert built.ml_pipeline is not None
        assert built.ml_pipeline.fitted
        assert built.frequency_index.count  # has the method, is built

    def test_train_ml_false_omits_pipeline(self, small_world):
        built = build_asdb(
            small_world, SystemConfig(seed=1, train_ml=False)
        )
        assert built.ml_pipeline is None

    def test_frequency_index_counts_whois_domains(self, small_world):
        built = build_asdb(
            small_world, SystemConfig(seed=1, train_ml=False)
        )
        # Some domain observed in WHOIS must be indexed.
        counted = 0
        for asn in small_world.asns():
            for domain in small_world.registry.contact(
                asn
            ).candidate_domains:
                counted += built.frequency_index.count(domain) > 0
        assert counted > 0

    def test_exclusion_keeps_eval_orgs_out_of_training(self, small_world):
        held_out = tuple(small_world.asns()[:30])
        built = build_asdb(
            small_world,
            SystemConfig(seed=1, exclude_asns_from_training=held_out),
        )
        assert built.ml_pipeline is not None  # still trains on the rest

    def test_same_config_same_classification(self, small_world):
        a = build_asdb(small_world, SystemConfig(seed=3))
        b = build_asdb(small_world, SystemConfig(seed=3))
        for asn in small_world.asns()[:40]:
            assert a.asdb.classify(asn).labels == b.asdb.classify(
                asn
            ).labels
