"""Tests for the async serving layer (`repro.serving`).

The contracts under test:

* the read index is immutable and answers by-ASN / by-org / category
  queries exactly like the dataset it was built from;
* a swap is atomic from a reader's point of view: a request observes
  one generation in full, never a blend of two, with no lock taken;
* unknown ASNs flow through the bounded background queue — 202 with a
  retry hint, 503 on overflow, a definitive 404 once classification
  provably failed — and results surface via the next swap;
* the asyncio HTTP layer speaks enough HTTP/1.1 (keep-alive,
  Content-Length framing) for stdlib clients and curl.
"""

import asyncio
import http.client
import json
import random
import threading
import time

import pytest

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core import ASdbRecord, SnapshotStore, Stage
from repro.core.database import ASdbDataset
from repro.obs import MetricsRegistry, RunLog, read_ledger
from repro.serving import (
    OFFER_FULL,
    OFFER_PENDING,
    OFFER_QUEUED,
    ClassificationQueue,
    HistoryIndex,
    QueueWorker,
    ReadIndex,
    ServingApp,
    history_from_snapshots,
    index_from_snapshots,
    index_from_store,
    record_view,
    refresh_history_from_snapshots,
    refresh_index_from_snapshots,
)
from repro.taxonomy import LabelSet


def _record(asn, slugs=("isp",), stage=Stage.ONE_SOURCE, org=None,
            domain=None):
    return ASdbRecord(
        asn=asn,
        labels=LabelSet.from_layer2_slugs(list(slugs)),
        stage=stage,
        domain=domain,
        org_key=f"name:{org}" if org else (
            f"domain:{domain}" if domain else None
        ),
    )


def _dataset(records):
    dataset = ASdbDataset()
    for record in records:
        dataset.add(record)
    return dataset


@pytest.fixture(scope="module")
def classified():
    """A small classified world (no ML) shared by the API tests."""
    world = generate_world(WorldConfig(n_orgs=40, seed=7))
    built = build_asdb(world, SystemConfig(seed=7, train_ml=False))
    dataset = built.asdb.classify_all()
    return world, built, dataset


class TestReadIndex:
    def test_build_matches_dataset(self, classified):
        _, _, dataset = classified
        index = ReadIndex.build(dataset, source="test")
        assert len(index) == len(dataset)
        assert index.version.records == len(dataset)
        assert index.version.coverage == pytest.approx(
            dataset.coverage()
        )
        for record in dataset:
            assert index.get(record.asn) == record
            assert record.asn in index
        assert index.categories() == dataset.category_histogram()
        assert index.stage_counts_typed() == dataset.stage_counts()

    def test_get_unknown(self):
        index = ReadIndex.build([_record(1)])
        assert index.get(2) is None
        assert 2 not in index

    def test_search_org_by_name_tokens(self):
        index = ReadIndex.build([
            _record(1, org="Acme Holdings"),
            _record(2, org="Acme Networks"),
            _record(3, org="Globex"),
        ])
        hits = index.search_org("acme")
        assert [record.asn for record in hits] == [1, 2]
        assert [r.asn for r in index.search_org("acme networks")] == [2]
        assert index.search_org("initech") == []

    def test_search_org_by_domain(self):
        index = ReadIndex.build([
            _record(9, domain="acme-networks.example"),
        ])
        assert [r.asn for r in index.search_org("acme-networks.example")] \
            == [9]

    def test_search_limit_ascending(self):
        index = ReadIndex.build(
            [_record(asn, org="Acme") for asn in range(50, 0, -1)]
        )
        hits = index.search_org("acme", limit=5)
        assert [record.asn for record in hits] == [1, 2, 3, 4, 5]

    def test_record_view_shape(self):
        record = _record(7, domain="x.example")
        view = record_view(record)
        assert view["asn"] == 7
        assert view["classified"] is True
        assert view["confidence"] == record.stage.prior_accuracy
        assert json.dumps(view)  # JSON-able

    def test_index_is_immutable_surface(self):
        index = ReadIndex.build([_record(1, slugs=("isp",))])
        index.categories()["isp-zzz"] = 99
        index.stage_counts()["fake"] = 1
        assert "isp-zzz" not in index.categories()
        assert "fake" not in index.stage_counts()


class TestRouting:
    def _app(self, records=None, **kwargs):
        index = ReadIndex.build(records or [_record(1)], source="unit")
        return ServingApp(index, **kwargs)

    def test_healthz(self):
        status, body, _ = self._app().handle_request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["generation"] == 1
        assert body["queue_depth"] is None

    def test_version(self):
        status, body, _ = self._app().handle_request("GET", "/version")
        assert status == 200
        assert body == {
            "generation": 1, "records": 1, "coverage": 1.0,
            "source": "unit", "snapshot_version": None, "digest": None,
        }

    def test_categories(self):
        app = self._app([_record(1), _record(2, slugs=("hosting",))])
        status, body, _ = app.handle_request("GET", "/categories")
        assert status == 200
        assert body["categories"] == {"computer_and_it": 2}
        assert body["stages"] == {Stage.ONE_SOURCE.value: 2}

    def test_asn_found(self):
        status, body, _ = self._app().handle_request("GET", "/asn/1")
        assert status == 200
        assert body["record"]["asn"] == 1

    def test_asn_not_an_int(self):
        status, body, _ = self._app().handle_request("GET", "/asn/xyz")
        assert status == 400
        assert "not an ASN" in body["error"]

    def test_asn_unknown_without_queue_is_404(self):
        status, body, _ = self._app().handle_request("GET", "/asn/404")
        assert status == 404

    def test_org_query_with_limit(self):
        app = self._app(
            [_record(asn, org="Acme Corp") for asn in (3, 1, 2)]
        )
        status, body, _ = app.handle_request("GET", "/org/acme?limit=2")
        assert status == 200
        assert body["count"] == 2
        assert [m["asn"] for m in body["matches"]] == [1, 2]

    def test_org_bad_limit(self):
        status, body, _ = self._app().handle_request(
            "GET", "/org/acme?limit=zz"
        )
        assert status == 400

    def test_org_percent_decoding(self):
        app = self._app([_record(5, org="Acme Corp")])
        status, body, _ = app.handle_request("GET", "/org/acme%20corp")
        assert status == 200
        assert body["count"] == 1

    def test_metrics_text(self):
        registry = MetricsRegistry()
        app = self._app(metrics=registry)
        app.handle_request("GET", "/healthz")
        status, body, headers = app.handle_request("GET", "/metrics")
        assert status == 200
        assert isinstance(body, str)
        assert "asdb_serve_requests_total" in body
        assert headers["Content-Type"].startswith("text/plain")

    def test_unknown_route(self):
        status, body, _ = self._app().handle_request("GET", "/nope")
        assert status == 404

    def test_unsupported_method(self):
        status, body, _ = self._app().handle_request("PUT", "/healthz")
        assert status == 405

    def test_post_refresh_without_rebuild_is_405(self):
        status, body, _ = self._app().handle_request("POST", "/refresh")
        assert status == 405

    def test_post_refresh_bumps_generation(self):
        records = [_record(1)]
        app = ServingApp(
            ReadIndex.build(records, generation=1),
            rebuild=lambda generation: ReadIndex.build(
                records + [_record(2)], generation=generation
            ),
        )
        status, body, _ = app.handle_request("POST", "/refresh")
        assert status == 200
        assert body["version"]["generation"] == 2
        assert body["version"]["records"] == 2
        status, body, _ = app.handle_request("GET", "/asn/2")
        assert status == 200

    def test_request_metrics_labelled_by_endpoint(self):
        registry = MetricsRegistry()
        app = self._app(metrics=registry)
        app.handle_request("GET", "/asn/1")
        app.handle_request("GET", "/asn/zz")
        counter = registry.get("asdb_serve_requests_total")
        assert counter.value(endpoint="asn", status="200") == 1
        assert counter.value(endpoint="asn", status="400") == 1
        seconds = registry.get("asdb_serve_seconds")
        assert seconds.count(endpoint="asn") == 2


class TestQueue:
    def test_offer_dedup_and_overflow(self):
        queue = ClassificationQueue(maxsize=2)
        assert queue.offer(1) == OFFER_QUEUED
        assert queue.offer(1) == OFFER_PENDING
        assert queue.offer(2) == OFFER_QUEUED
        assert queue.offer(3) == OFFER_FULL
        assert queue.depth() == 2

    def test_drain_and_settle(self):
        queue = ClassificationQueue(maxsize=8)
        for asn in (1, 2, 3):
            queue.offer(asn)
        batch = queue.drain(2)
        assert batch == [1, 2]
        # drained ASNs are in-flight: still pending, not re-queueable
        assert queue.offer(1) == OFFER_PENDING
        queue.settle(batch, failures={2: "boom"})
        assert queue.failure(2) == "boom"
        assert queue.failure(1) is None
        assert queue.drain(8) == [3]

    def test_queue_metrics(self):
        registry = MetricsRegistry()
        queue = ClassificationQueue(maxsize=1, metrics=registry)
        queue.offer(1)
        queue.offer(2)
        counter = registry.get("asdb_serve_queue_total")
        assert counter.value(outcome=OFFER_QUEUED) == 1
        assert counter.value(outcome=OFFER_FULL) == 1
        assert registry.get("asdb_serve_queue_depth").value() == 1

    def test_worker_falls_back_per_asn(self):
        """One bad ASN in a window cannot poison the good ones."""
        classified = []

        def classify(asns):
            if 13 in asns and len(asns) > 1:
                raise RuntimeError("batch poisoned")
            if asns == [13]:
                raise KeyError(13)
            classified.extend(asns)

        queue = ClassificationQueue(maxsize=8)
        landed_batches = []
        worker = QueueWorker(
            queue, classify=classify, after=landed_batches.append
        )
        for asn in (11, 13, 17):
            queue.offer(asn)
        landed = worker.process(queue.drain(8))
        assert landed == [11, 17]
        assert classified == [11, 17]
        assert "KeyError" in queue.failure(13)
        assert landed_batches == [[11, 17]]

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            ClassificationQueue(maxsize=0)


class TestQueueRoutes:
    def _app(self, maxsize=2):
        queue = ClassificationQueue(maxsize=maxsize)
        index = ReadIndex.build([_record(1)])
        return ServingApp(index, queue=queue, retry_after=3), queue

    def test_unknown_asn_gets_202_with_retry_hint(self):
        app, queue = self._app()
        status, body, headers = app.handle_request("GET", "/asn/99")
        assert status == 202
        assert body["status"] == OFFER_QUEUED
        assert body["retry_after"] == 3
        assert headers["Retry-After"] == "3"
        # second lookup: still pending, still 202
        status, body, _ = app.handle_request("GET", "/asn/99")
        assert status == 202
        assert body["status"] == OFFER_PENDING
        assert queue.depth() == 1

    def test_queue_overflow_gets_503(self):
        app, _ = self._app(maxsize=1)
        assert app.handle_request("GET", "/asn/91")[0] == 202
        status, body, headers = app.handle_request("GET", "/asn/92")
        assert status == 503
        assert "full" in body["error"]
        assert headers["Retry-After"] == "3"

    def test_failed_asn_gets_definitive_404(self):
        app, queue = self._app()
        app.handle_request("GET", "/asn/99")
        worker = QueueWorker(
            queue,
            classify=lambda asns: (_ for _ in ()).throw(KeyError(99)),
        )
        worker.process(queue.drain(8))
        status, body, _ = app.handle_request("GET", "/asn/99")
        assert status == 404
        assert "could not be classified" in body["error"]


class TestAtomicSwap:
    """Readers racing a swap see one index generation in full."""

    ASNS = tuple(range(1, 41))

    def _indexes(self):
        v1 = [
            _record(asn, slugs=("isp",), domain=f"v1-{asn}.example")
            for asn in self.ASNS
        ]
        v2 = [
            _record(asn, slugs=("hosting",), domain=f"v2-{asn}.example")
            for asn in self.ASNS
        ]
        return (
            ReadIndex.build(v1, generation=1, source="v1"),
            ReadIndex.build(v2, generation=2, source="v2"),
        )

    def test_reads_never_blend_generations(self):
        idx1, idx2 = self._indexes()
        app = ServingApp(idx1)
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for asn in (1, 17, 40):
                    status, body, _ = app.handle_request(
                        "GET", f"/asn/{asn}"
                    )
                    expected = f"v{body['generation']}-{asn}.example"
                    if status != 200 \
                            or body["record"]["domain"] != expected:
                        errors.append((asn, body))
                status, body, _ = app.handle_request(
                    "GET", "/categories"
                )
                want = (
                    {"computer_and_it": len(self.ASNS)}
                )
                if body["categories"] != want:
                    errors.append(("categories", body))
                # the per-generation label split must be all-or-nothing
                status, body, _ = app.handle_request("GET", "/version")
                if body["source"] != f"v{body['generation']}":
                    errors.append(("version", body))

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        for flip in range(400):
            app.swap(idx2 if flip % 2 == 0 else idx1)
        stop.set()
        for thread in readers:
            thread.join(10)
        assert not errors, errors[:5]

    def test_swap_updates_metrics_and_ledger(self, tmp_path):
        idx1, idx2 = self._indexes()
        registry = MetricsRegistry()
        ledger = tmp_path / "serve.ndjson"
        runlog = RunLog(str(ledger), kind="serve", config={}, world={})
        app = ServingApp(idx1, metrics=registry, runlog=runlog)
        app.swap(idx2)
        runlog.close()
        assert registry.get("asdb_serve_swaps_total").total() == 1
        assert registry.get("asdb_serve_index_records").value() == \
            len(self.ASNS)
        events = [
            event for event in read_ledger(str(ledger))
            if event["event"] == "serve.swap"
        ]
        assert len(events) == 1
        assert events[0]["generation"] == 2


class _HttpService:
    """Run a ServingApp's asyncio server in a background thread."""

    def __init__(self, app):
        self.app = app
        self._ready = threading.Event()
        self._loop = None
        self.address = None
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self.address = await self.app.start("127.0.0.1", 0)
            self._ready.set()
            try:
                await self.app.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.app.stop()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server did not start"
        return self

    def __exit__(self, *exc_info):
        for task in asyncio.all_tasks(self._loop):
            self._loop.call_soon_threadsafe(task.cancel)
        self._thread.join(10)

    def get(self, path):
        return self.request("GET", path)

    def request(self, method, path, headers=None):
        host, port = self.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(method, path, headers=headers or {})
            response = conn.getresponse()
            raw = response.read().decode()
            body = (
                json.loads(raw)
                if raw and response.getheader(
                    "Content-Type", "").startswith("application/json")
                else raw
            )
            return response.status, body, dict(response.getheaders())
        finally:
            conn.close()


class TestHttpEndToEnd:
    def test_all_endpoints_over_http(self, classified):
        _, _, dataset = classified
        index = index_from_store(dataset, source="memory")
        app = ServingApp(index)
        with _HttpService(app) as service:
            status, body, _ = service.get("/healthz")
            assert (status, body["status"]) == (200, "ok")
            status, body, _ = service.get("/version")
            assert body["records"] == len(dataset)
            status, body, _ = service.get("/categories")
            assert body["categories"] == dataset.category_histogram()
            asn = next(iter(dataset)).asn
            status, body, _ = service.get(f"/asn/{asn}")
            assert status == 200
            assert body["record"]["asn"] == asn
            domain = next(
                record.domain for record in dataset if record.domain
            )
            status, body, _ = service.get(f"/org/{domain}")
            assert status == 200
            assert body["count"] >= 1
            status, body, _ = service.get("/asn/999999999")
            assert status == 404

    def test_keep_alive_serves_many_requests_per_connection(
        self, classified
    ):
        _, _, dataset = classified
        app = ServingApp(index_from_store(dataset))
        with _HttpService(app) as service:
            host, port = service.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                for _ in range(20):
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
            finally:
                conn.close()

    def test_lazy_serving_202_then_200_after_swap(self, classified):
        world, built, _ = classified
        registry = MetricsRegistry()
        queue = ClassificationQueue(maxsize=64, metrics=registry)

        def rebuild(generation):
            return index_from_store(
                built.asdb.dataset, generation=generation,
                source="pipeline",
            )

        app = ServingApp(rebuild(1), rebuild=rebuild, queue=queue,
                         metrics=registry)
        app.worker = QueueWorker(
            queue,
            classify=lambda asns: built.asdb.classify_batch(asns),
            classify_one=built.asdb.classify,
            after=app.on_drained,
        )
        asn = world.asns()[-1]
        with _HttpService(app) as service:
            status, body, headers = service.get(f"/asn/{asn}")
            if status == 202:  # already classified module-wide otherwise
                assert "Retry-After" in headers
                deadline = time.time() + 20
                while time.time() < deadline:
                    status, body, _ = service.get(f"/asn/{asn}")
                    if status == 200:
                        break
                    time.sleep(0.05)
            assert status == 200
            assert body["record"]["asn"] == asn


class TestSnapshotServing:
    def _store(self, tmp_path, records):
        store = SnapshotStore(str(tmp_path / "releases"))
        store.save(_dataset(records))
        return store

    def test_materialize_returns_dataset_and_info(self, tmp_path):
        records = [_record(asn) for asn in (1, 2, 3)]
        store = self._store(tmp_path, records)
        dataset, info = store.materialize()
        assert sorted(record.asn for record in dataset) == [1, 2, 3]
        assert info.version == 1
        assert info.digest
        with pytest.raises(Exception):
            SnapshotStore(str(tmp_path / "empty")).materialize()

    def test_index_from_snapshots_carries_release_identity(
        self, tmp_path
    ):
        records = [_record(asn) for asn in (1, 2, 3)]
        store = self._store(tmp_path, records)
        index = index_from_snapshots(store.root)
        assert index.version.snapshot_version == 1
        assert index.version.digest == store.latest().digest
        assert len(index) == 3

    def test_refresh_rebuilds_history_in_same_generation(
        self, tmp_path
    ):
        store = SnapshotStore(str(tmp_path / "releases"))
        store.save(_dataset([_record(1), _record(2)]), window=(-1, 0))
        root = store.root
        app = ServingApp(
            index_from_snapshots(root),
            rebuild=lambda generation: index_from_snapshots(
                root, generation=generation
            ),
            history=history_from_snapshots(root),
            rebuild_history=lambda generation: history_from_snapshots(
                root, generation=generation
            ),
        )
        assert app.history.latest_version == 1
        SnapshotStore(root).save(
            _dataset([_record(1), _record(2), _record(3)]),
            window=(0, 90),
        )
        status, _, _ = app.handle_request("POST", "/refresh")
        assert status == 200
        assert app.history.latest_version == 2
        assert app.history.generation == \
            app.index.version.generation == 2
        status, body, _ = app.handle_request("GET", "/asn/3/history")
        assert status == 200
        assert [event["change"] for event in body["events"]] == ["added"]

    def test_refresh_picks_up_new_snapshot_version(self, tmp_path):
        records = [_record(asn) for asn in (1, 2)]
        store = self._store(tmp_path, records)
        root = store.root

        app = ServingApp(
            index_from_snapshots(root),
            rebuild=lambda generation: index_from_snapshots(
                root, generation=generation
            ),
        )
        # a new release lands (e.g. `repro refresh` in another process)
        SnapshotStore(root).save(
            _dataset(records + [_record(3, slugs=("hosting",))])
        )
        status, body, _ = app.handle_request("POST", "/refresh")
        assert status == 200
        assert body["version"]["snapshot_version"] == 2
        assert body["version"]["generation"] == 2
        status, body, _ = app.handle_request("GET", "/asn/3")
        assert status == 200

class TestTemporalServing:
    """The read-only history endpoints served from a HistoryIndex."""

    def _app(self, tmp_path, **kwargs):
        store = SnapshotStore(str(tmp_path / "releases"))
        store.save(
            _dataset([
                _record(1, slugs=("isp",)),
                _record(2, slugs=("streaming",)),
            ]),
            window=(-1, 0),
        )
        store.save(
            _dataset([
                _record(1, slugs=("banks",)),
                _record(3, slugs=("isp",)),
            ]),
            window=(0, 90),
        )
        index = index_from_snapshots(store.root)
        history = history_from_snapshots(store.root)
        return ServingApp(index, history=history, **kwargs)

    def test_history_endpoint_replays_timeline(self, tmp_path):
        app = self._app(tmp_path)
        status, body, _ = app.handle_request("GET", "/asn/1/history")
        assert status == 200
        assert body["asn"] == 1
        assert body["latest_version"] == 2
        changes = [event["change"] for event in body["events"]]
        assert changes == ["added", "updated"]
        cats = [event["categorization"] for event in body["events"]]
        assert cats == ["computer_and_it", "finance"]
        status, body, _ = app.handle_request("GET", "/asn/2/history")
        assert [event["change"] for event in body["events"]] == \
            ["added", "removed"]

    def test_history_endpoint_errors(self, tmp_path):
        app = self._app(tmp_path)
        status, body, _ = app.handle_request("GET", "/asn/x/history")
        assert status == 400
        status, body, _ = app.handle_request("GET", "/asn/99/history")
        assert status == 404
        assert "never appears" in body["error"]

    def test_asof_endpoint_resolves_day_to_version(self, tmp_path):
        app = self._app(tmp_path)
        status, body, _ = app.handle_request("GET", "/asof/0/asn/2")
        assert status == 200
        assert body["version"] == 1
        assert body["record"]["asn"] == 2
        status, body, _ = app.handle_request("GET", "/asof/90/asn/2")
        assert status == 404
        assert "not in the dataset" in body["error"]
        assert body["version"] == 2
        status, body, _ = app.handle_request("GET", "/asof/90/asn/3")
        assert status == 200
        assert body["digest"]
        assert (body["since_day"], body["through_day"]) == (0, 90)

    def test_asof_endpoint_errors(self, tmp_path):
        app = self._app(tmp_path)
        status, body, _ = app.handle_request("GET", "/asof/x/asn/1")
        assert status == 400
        status, body, _ = app.handle_request("GET", "/asof/0/asn/x")
        assert status == 400
        status, body, _ = app.handle_request("GET", "/asof/-10/asn/1")
        assert status == 404
        assert "no release at or before" in body["error"]

    def test_without_history_endpoints_404(self, classified):
        _, _, dataset = classified
        app = ServingApp(index_from_store(dataset))
        for target in ("/asn/1/history", "/asof/10/asn/1"):
            status, body, _ = app.handle_request("GET", target)
            assert status == 404
            assert "history is not served here" in body["error"]

    def test_history_swap_metrics_and_ledger(self, tmp_path):
        registry = MetricsRegistry()
        ledger = tmp_path / "serve.ndjson"
        runlog = RunLog(str(ledger), kind="serve", config={}, world={})
        app = self._app(tmp_path, metrics=registry, runlog=runlog)
        root = str(tmp_path / "releases")
        SnapshotStore(root).save(
            _dataset([_record(1), _record(3), _record(4)]),
            window=(90, 180),
        )
        app.swap_history(history_from_snapshots(root, generation=2))
        runlog.close()
        assert registry.get("asdb_serve_history_versions").value() == 3
        assert registry.get("asdb_serve_history_asns").value() == 4
        events = [
            event for event in read_ledger(str(ledger))
            if event["event"] == "serve.history_swap"
        ]
        assert len(events) == 1
        assert events[0]["versions"] == 3
        assert events[0]["asns"] == 4

    def test_history_reads_race_swaps_lock_free(self, tmp_path):
        """Readers racing swap_history always see one coherent index.

        Two histories disagree on depth (2 vs 3 releases); a coherent
        response has an event count matching its own latest_version for
        an AS updated in every release.
        """
        root = str(tmp_path / "releases")
        store = SnapshotStore(root)
        slugs = [("isp",), ("banks",), ("streaming",)]
        for epoch in range(3):
            store.save(
                _dataset([_record(1, slugs=slugs[epoch]), _record(2)]),
                window=(epoch * 90 - 90, epoch * 90),
            )
        shallow = HistoryIndex.build(
            SnapshotStore(root), generation=1
        )
        # Rebuild a 2-release view by trimming the store contents.
        trimmed = SnapshotStore(str(tmp_path / "trimmed"))
        for epoch in range(2):
            trimmed.save(
                _dataset([_record(1, slugs=slugs[epoch]), _record(2)]),
                window=(epoch * 90 - 90, epoch * 90),
            )
        short = HistoryIndex.build(trimmed, generation=2)
        app = self._app(tmp_path)
        app.swap_history(shallow)
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                status, body, _ = app.handle_request(
                    "GET", "/asn/1/history"
                )
                if status != 200 \
                        or len(body["events"]) != body["latest_version"]:
                    errors.append(body)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        for flip in range(400):
            app.swap_history(short if flip % 2 == 0 else shallow)
        stop.set()
        for thread in readers:
            thread.join(10)
        assert not errors, errors[:5]


def _random_world(rng, orgs=("Acme", "Globex", "Initech", "Umbrella")):
    """A random record population keyed by ASN."""
    slugs_pool = [("isp",), ("hosting",), ("banks",), ("streaming",),
                  ("isp", "hosting")]
    return {
        asn: _record(
            asn,
            slugs=rng.choice(slugs_pool),
            stage=rng.choice(list(Stage)),
            org=rng.choice(orgs),
        )
        for asn in rng.sample(range(1, 200), rng.randint(10, 30))
    }


def _mutate(rng, world):
    """Apply a random batch of adds, updates, and removals in place."""
    slugs_pool = [("isp",), ("hosting",), ("banks",), ("streaming",)]
    for asn in rng.sample(sorted(world), min(len(world),
                                             rng.randint(0, 5))):
        del world[asn]
    for _ in range(rng.randint(0, 6)):
        asn = rng.randint(1, 220)
        world[asn] = _record(
            asn,
            slugs=rng.choice(slugs_pool),
            stage=rng.choice(list(Stage)),
            org=rng.choice(("Acme", "Globex", "Hooli", None)),
        )


def _assert_index_equal(incremental, full):
    """Delta-applied and rebuilt indexes must be observably identical."""
    assert incremental.fingerprint() == full.fingerprint()
    assert incremental.etag == full.etag
    assert len(incremental) == len(full)
    assert incremental.categories() == full.categories()
    assert incremental.stage_counts() == full.stage_counts()
    assert incremental.version.to_dict() == full.version.to_dict()
    for asn in range(1, 221):
        left, right = incremental.get(asn), full.get(asn)
        assert (left is None) == (right is None)
        if left is not None:
            assert record_view(left) == record_view(right)
    assert incremental._postings == full._postings


class TestIncrementalRefresh:
    """Delta-applied successors must equal full rebuilds, always."""

    def test_apply_delta_equals_full_rebuild_randomized(self, tmp_path):
        """Property: across randomized add/update/remove release
        chains, refresh_index_from_snapshots is indistinguishable from
        index_from_snapshots (fingerprint, ETag, every record, every
        posting, aggregates)."""
        for seed in range(6):
            rng = random.Random(seed)
            root = str(tmp_path / f"releases-{seed}")
            store = SnapshotStore(root)
            world = _random_world(rng)
            store.save(_dataset(world.values()), window=(-1, 0))
            index = index_from_snapshots(root, generation=1)
            for epoch in range(1, 5):
                _mutate(rng, world)
                store.save(_dataset(world.values()),
                           window=(epoch * 30 - 30, epoch * 30))
                incremental = refresh_index_from_snapshots(
                    root, index, generation=epoch + 1
                )
                assert incremental is not None
                full = index_from_snapshots(
                    root, generation=epoch + 1
                )
                _assert_index_equal(incremental, full)
                index = incremental

    def test_remove_then_readd_across_deltas(self, tmp_path):
        """An AS removed in one delta and re-added (with new labels) in
        a later one must land re-added, not removed, after the chain is
        merged into one net delta."""
        root = str(tmp_path / "releases")
        store = SnapshotStore(root)
        store.save(_dataset([_record(1), _record(2, org="Acme")]))
        index = index_from_snapshots(root, generation=1)
        store.save(_dataset([_record(2, org="Acme")]))  # AS1 removed
        store.save(_dataset([  # AS1 re-added, different category + org
            _record(1, slugs=("banks",), org="Globex"),
            _record(2, org="Acme"),
        ]))
        incremental = refresh_index_from_snapshots(
            root, index, generation=2
        )
        assert incremental is not None
        full = index_from_snapshots(root, generation=2)
        _assert_index_equal(incremental, full)
        record = incremental.get(1)
        assert sorted(record.labels.layer2_slugs()) == ["banks"]
        assert [r.asn for r in incremental.search_org("globex")] == [1]
        assert incremental.search_org("acme") and all(
            r.asn == 2 for r in incremental.search_org("acme")
        )

    def test_incremental_refuses_stale_lineage(self, tmp_path):
        """Digest mismatch, a full save in the chain, or a digest-less
        index all return None (forcing the full-rebuild fallback)."""
        root = str(tmp_path / "releases")
        store = SnapshotStore(root)
        store.save(_dataset([_record(1)]))
        index = index_from_snapshots(root, generation=1)

        # A full (non-delta) save breaks the delta chain.
        store.save(_dataset([_record(1), _record(2)]), full=True)
        assert refresh_index_from_snapshots(root, index, 2) is None

        # A digest-less index can't prove lineage.
        bare = ReadIndex.build([_record(1)], source="unit")
        assert bare.version.digest is None
        assert refresh_index_from_snapshots(root, bare, 2) is None

        # A rewritten store (same version number, different digest).
        other_root = str(tmp_path / "other")
        SnapshotStore(other_root).save(_dataset([_record(9)]))
        assert refresh_index_from_snapshots(
            other_root, index, 2
        ) is None

        # A version number the store has never seen.
        tiny_root = str(tmp_path / "tiny")
        SnapshotStore(tiny_root).save(_dataset([_record(1)]))
        deep = index_from_snapshots(root, generation=1)
        assert deep.version.snapshot_version == 2
        assert refresh_index_from_snapshots(tiny_root, deep, 2) is None

    def test_no_new_versions_is_a_valid_noop_refresh(self, tmp_path):
        """Refreshing against an unchanged store still succeeds
        incrementally and produces an equal (next-generation) index."""
        root = str(tmp_path / "releases")
        SnapshotStore(root).save(_dataset([_record(1), _record(2)]))
        index = index_from_snapshots(root, generation=1)
        incremental = refresh_index_from_snapshots(root, index, 2)
        assert incremental is not None
        assert incremental.fingerprint() == index.fingerprint()
        assert incremental.version.generation == 2

    def test_history_extend_equals_full_rebuild_randomized(
        self, tmp_path
    ):
        """Property: HistoryIndex.extend over randomized delta chains
        yields the same timelines, infos, and day mapping as a full
        HistoryIndex.build."""
        for seed in range(4):
            rng = random.Random(1000 + seed)
            root = str(tmp_path / f"releases-{seed}")
            store = SnapshotStore(root)
            world = _random_world(rng)
            store.save(_dataset(world.values()), window=(-1, 0))
            history = history_from_snapshots(root, generation=1)
            for epoch in range(1, 5):
                _mutate(rng, world)
                store.save(_dataset(world.values()),
                           window=(epoch * 30 - 30, epoch * 30))
                extended = refresh_history_from_snapshots(
                    root, history, generation=epoch + 1
                )
                assert extended is not None
                full = history_from_snapshots(
                    root, generation=epoch + 1
                )
                assert extended._timelines == full._timelines
                assert extended._infos == full._infos
                assert extended._days == full._days
                assert extended.generation == full.generation
                history = extended

    def test_history_extend_refuses_stale_lineage(self, tmp_path):
        root = str(tmp_path / "releases")
        store = SnapshotStore(root)
        store.save(_dataset([_record(1)]))
        history = history_from_snapshots(root, generation=1)
        store.save(_dataset([_record(1), _record(2)]), full=True)
        assert refresh_history_from_snapshots(root, history, 2) is None
        other = str(tmp_path / "other")
        SnapshotStore(other).save(_dataset([_record(9)]))
        assert refresh_history_from_snapshots(other, history, 2) is None


class TestResponseCacheAndConditional:
    """Per-generation response cache, ETag/304, HEAD, and 405."""

    def _app(self, records=None, **kwargs):
        index = ReadIndex.build(records or [_record(1)], source="unit")
        return ServingApp(index, **kwargs)

    def test_etag_present_and_stable_within_generation(self):
        app = self._app()
        _, _, first = app.handle_request("GET", "/asn/1")
        _, _, second = app.handle_request("GET", "/version")
        assert first["ETag"] == second["ETag"] == app.index.etag
        assert first["ETag"].startswith('"asdb-g1-')

    def test_if_none_match_returns_bodyless_304(self):
        app = self._app()
        _, _, headers = app.handle_request("GET", "/categories")
        etag = headers["ETag"]
        status, body, headers, payload = app._respond(
            "GET", "/categories", {"if-none-match": etag}
        )
        assert (status, body, payload) == (304, "", b"")
        assert headers["ETag"] == etag
        # Wildcard and multi-tag lists match too (RFC 7232).
        assert app.handle_request(
            "GET", "/version", {"if-none-match": "*"}
        )[0] == 304
        assert app.handle_request(
            "GET", "/version",
            {"if-none-match": f'"stale-tag", {etag}'},
        )[0] == 304
        # A stale tag does not.
        assert app.handle_request(
            "GET", "/version", {"if-none-match": '"stale-tag"'}
        )[0] == 200

    def test_etag_and_304_roll_over_at_swap(self):
        app = self._app()
        _, _, headers = app.handle_request("GET", "/version")
        old_etag = headers["ETag"]
        app.swap(ReadIndex.build(
            [_record(1), _record(2)], generation=2, source="unit"
        ))
        status, _, headers = app.handle_request(
            "GET", "/version", {"if-none-match": old_etag}
        )
        assert status == 200  # old tag no longer matches
        assert headers["ETag"] != old_etag

    def test_cache_memoizes_exact_payload_bytes(self):
        registry = MetricsRegistry()
        app = self._app(metrics=registry)
        first = app._respond("GET", "/asn/1")
        again = app._respond("GET", "/asn/1")
        assert again == first
        assert again[3] == (
            json.dumps(first[1]) + "\n"
        ).encode("utf-8")
        assert registry.get(
            "asdb_serve_cache_misses_total").total() == 1
        assert registry.get("asdb_serve_cache_hits_total").total() == 1
        # Non-cacheable endpoints never populate the cache.
        app._respond("GET", "/org/acme")
        app._respond("GET", "/healthz")
        assert set(app.index.response_cache) == {"/asn/1"}

    def test_cache_dies_with_the_generation(self):
        app = self._app()
        app.handle_request("GET", "/asn/1")
        assert app.index.response_cache
        app.swap(ReadIndex.build(
            [_record(1, slugs=("banks",))], generation=2, source="unit"
        ))
        assert app.index.response_cache == {}
        status, body, _ = app.handle_request("GET", "/asn/1")
        assert status == 200
        assert body["record"]["labels"][0]["layer2"] == "banks"

    def test_swap_racing_a_miss_cannot_poison_the_new_cache(self):
        """A request that routed against generation 1 but finishes
        after the swap must store its entry into generation 1's cache
        (which died with the swap), never the new index's."""
        old = ReadIndex.build([_record(1)], source="unit")
        new = ReadIndex.build(
            [_record(1, slugs=("banks",))], generation=2, source="unit"
        )
        app = ServingApp(old)
        barrier = threading.Barrier(2)

        original_route = app._route

        def slow_route(*args, **kwargs):
            result = original_route(*args, **kwargs)
            barrier.wait(5)   # request routed against the old index...
            barrier.wait(5)   # ...swap happens here...
            return result     # ...then the cache store runs
        app._route = slow_route

        worker = threading.Thread(
            target=app._respond, args=("GET", "/asn/1")
        )
        worker.start()
        barrier.wait(5)
        app.swap(new)
        barrier.wait(5)
        worker.join(10)
        app._route = original_route
        assert new.response_cache == {}
        cached = old.response_cache["/asn/1"][1]
        assert cached["record"]["labels"][0]["layer2"] == "isp"
        status, body, _ = app.handle_request("GET", "/asn/1")
        assert status == 200
        assert body["record"]["labels"][0]["layer2"] == "banks"

    def test_head_mirrors_get_without_a_body(self):
        app = self._app()
        with _HttpService(app) as service:
            get_status, get_body, get_headers = service.get("/asn/1")
            head_status, head_body, head_headers = service.request(
                "HEAD", "/asn/1"
            )
            assert (get_status, head_status) == (200, 200)
            assert head_body == ""
            assert head_headers["Content-Length"] \
                == get_headers["Content-Length"]
            assert head_headers["ETag"] == get_headers["ETag"]
            # HEAD works on every GET endpoint, including uncached.
            for path in ("/healthz", "/org/acme", "/metrics"):
                status, body, _ = service.request("HEAD", path)
                assert (status, body) == (200, "")

    def test_wrong_method_on_known_path_is_405_with_allow(self):
        app = self._app()
        status, body, headers = app.handle_request("POST", "/asn/1")
        assert status == 405
        assert headers["Allow"] == "GET, HEAD"
        assert body["allow"] == ["GET", "HEAD"]
        status, _, headers = app.handle_request("GET", "/refresh")
        assert (status, headers["Allow"]) == (405, "POST")
        # Unknown paths stay 404 whatever the method.
        assert app.handle_request("PUT", "/nope")[0] == 404

    def test_conditional_and_405_over_http(self):
        app = self._app()
        with _HttpService(app) as service:
            _, _, headers = service.get("/version")
            etag = headers["ETag"]
            status, body, headers = service.request(
                "GET", "/version", {"If-None-Match": etag}
            )
            assert (status, body) == (304, "")
            assert headers["ETag"] == etag
            assert headers["Content-Length"] == "0"  # bodyless
            status, _, headers = service.request("DELETE", "/version")
            assert (status, headers["Allow"]) == (405, "GET, HEAD")


class TestRefreshModes:
    """ServingApp.refresh: incremental vs full, fallback, atomicity."""

    def _snapshot_app(self, tmp_path, registry=None, runlog=None,
                      incremental=True, with_history=True):
        root = str(tmp_path / "releases")
        store = SnapshotStore(root)
        store.save(
            _dataset([_record(1), _record(2, org="Acme")]),
            window=(-1, 0),
        )
        app = ServingApp(
            index_from_snapshots(root, generation=1),
            rebuild=lambda generation: index_from_snapshots(
                root, generation=generation
            ),
            metrics=registry,
            runlog=runlog,
            history=(
                history_from_snapshots(root, generation=1)
                if with_history else None
            ),
            rebuild_history=(
                (lambda generation: history_from_snapshots(
                    root, generation=generation
                )) if with_history else None
            ),
            refresh_incremental=(
                (lambda generation, previous:
                 refresh_index_from_snapshots(
                     root, previous, generation))
                if incremental else None
            ),
            refresh_history_incremental=(
                (lambda generation, previous:
                 refresh_history_from_snapshots(
                     root, previous, generation))
                if incremental and with_history else None
            ),
        )
        return app, store

    def test_refresh_takes_the_incremental_path(self, tmp_path):
        registry = MetricsRegistry()
        ledger = tmp_path / "run.ndjson"
        runlog = RunLog(str(ledger), kind="serve", config={}, world={})
        app, store = self._snapshot_app(tmp_path, registry, runlog)
        store.save(
            _dataset([
                _record(1, slugs=("banks",)),
                _record(2, org="Acme"),
                _record(3),
            ]),
            window=(0, 30),
        )
        new = app.refresh()
        runlog.close()
        assert new.version.snapshot_version == 2
        assert registry.get(
            "asdb_serve_refresh_incremental_total").total() == 1
        assert registry.get(
            "asdb_serve_refresh_full_total").total() == 0
        modes = [
            event for event in read_ledger(str(ledger))
            if event["event"] == "serve.refresh_mode"
        ]
        assert len(modes) == 1
        assert modes[0]["mode"] == "incremental"
        assert modes[0]["history_mode"] == "incremental"
        assert modes[0]["generation"] == 2
        assert modes[0]["snapshot_version"] == 2
        # Both views actually swapped, mutually consistent.
        assert app.index.version.generation == 2
        assert app.history.latest_version == 2
        status, body, _ = app.handle_request("GET", "/asn/3")
        assert status == 200
        # Incremental result equals what the full rebuild would say.
        assert new.fingerprint() == index_from_snapshots(
            str(tmp_path / "releases"), generation=2
        ).fingerprint()

    def test_refresh_falls_back_to_full_on_broken_lineage(
        self, tmp_path
    ):
        registry = MetricsRegistry()
        ledger = tmp_path / "run.ndjson"
        runlog = RunLog(str(ledger), kind="serve", config={}, world={})
        app, store = self._snapshot_app(tmp_path, registry, runlog)
        store.save(
            _dataset([_record(1), _record(2, org="Acme"), _record(4)]),
            full=True,  # full save breaks the delta chain
        )
        app.refresh()
        runlog.close()
        assert registry.get(
            "asdb_serve_refresh_full_total").total() == 1
        assert registry.get(
            "asdb_serve_refresh_incremental_total").total() == 0
        modes = [
            event for event in read_ledger(str(ledger))
            if event["event"] == "serve.refresh_mode"
        ]
        assert modes[0]["mode"] == "full"
        assert app.handle_request("GET", "/asn/4")[0] == 200

    def test_refresh_fallback_on_incremental_exception(self, tmp_path):
        registry = MetricsRegistry()
        ledger = tmp_path / "run.ndjson"
        runlog = RunLog(str(ledger), kind="serve", config={}, world={})
        app, store = self._snapshot_app(
            tmp_path, registry, runlog, with_history=False
        )
        app._refresh_incremental = lambda generation, previous: (
            (_ for _ in ()).throw(RuntimeError("store exploded"))
        )
        store.save(_dataset([_record(1), _record(2, org="Acme"),
                             _record(5)]))
        new = app.refresh()
        runlog.close()
        assert new.version.generation == 2
        assert registry.get(
            "asdb_serve_refresh_full_total").total() == 1
        fallbacks = [
            event for event in read_ledger(str(ledger))
            if event["event"] == "serve.refresh_fallback"
        ]
        assert len(fallbacks) == 1
        assert "store exploded" in fallbacks[0]["error"]

    def test_failing_history_rebuild_leaves_old_pair_served(
        self, tmp_path
    ):
        """Atomicity regression: both successors are built before
        either swap, so a history rebuild blowing up leaves the service
        on the old, mutually consistent index/history pair."""
        registry = MetricsRegistry()
        app, store = self._snapshot_app(
            tmp_path, registry, incremental=False
        )
        old_index, old_history = app.index, app.history
        store.save(_dataset([_record(1), _record(2, org="Acme"),
                             _record(6)]))

        def broken_history(generation):
            raise RuntimeError("history rebuild exploded")
        app._rebuild_history = broken_history
        app._refresh_history_incremental = None

        with pytest.raises(RuntimeError, match="history rebuild"):
            app.refresh()
        assert app.index is old_index
        assert app.history is old_history
        assert registry.get("asdb_serve_swaps_total").total() == 0
        # The half-built state never leaked: AS6 (new release) is not
        # served, and history still answers from the old release set.
        assert app.handle_request("GET", "/asn/6")[0] == 404
        status, body, _ = app.handle_request("GET", "/asn/1/history")
        assert (status, body["latest_version"]) == (200, 1)


class TestOrgLimit:
    def _app(self, count=30):
        index = ReadIndex.build(
            [_record(asn, org="Acme Corp") for asn in range(1, count + 1)],
            source="unit",
        )
        return ServingApp(index)

    def test_default_limit_and_truncation_fields(self):
        app = self._app(count=30)
        status, body, _ = app.handle_request("GET", "/org/acme")
        assert status == 200
        assert body["count"] == 20  # ORG_LIMIT_DEFAULT
        assert body["total"] == 30
        assert body["limit"] == 20
        assert body["truncated"] is True
        assert [m["asn"] for m in body["matches"]] \
            == list(range(1, 21))

    def test_explicit_limit_is_capped(self):
        app = self._app(count=5)
        _, body, _ = app.handle_request("GET", "/org/acme?limit=2")
        assert (body["count"], body["total"], body["truncated"]) \
            == (2, 5, True)
        _, body, _ = app.handle_request("GET", "/org/acme?limit=999999")
        assert body["limit"] == 200  # ORG_LIMIT_CAP
        assert body["truncated"] is False
        _, body, _ = app.handle_request("GET", "/org/acme?limit=-3")
        assert body["limit"] == 1  # floor

    def test_bad_limit_is_400(self):
        app = self._app(count=2)
        status, body, _ = app.handle_request(
            "GET", "/org/acme?limit=lots"
        )
        assert status == 400
        assert "limit" in body["error"]
