"""Tests for the crowdwork simulation (Appendix B)."""

import pytest

from repro.crowd import (
    MTurkPlatform,
    MTurkWorker,
    apply_crowdwork,
    consensus_labels,
    estimate_cost_dollars,
)
from repro.crowd.worker import WorkerResponse
from repro.taxonomy import LabelSet


def _response(worker_id, slugs, minutes=1.0):
    return WorkerResponse(
        worker_id=worker_id,
        labels=LabelSet.from_layer2_slugs(slugs),
        minutes=minutes,
    )


class TestConsensus:
    def test_two_of_three_reached(self):
        outcome = consensus_labels(
            [
                _response("a", ["banks"]),
                _response("b", ["banks"]),
                _response("c", ["investment"]),
            ],
            required=2,
        )
        assert outcome.reached
        assert outcome.labels.layer2_slugs() == {"banks"}

    def test_no_consensus(self):
        outcome = consensus_labels(
            [
                _response("a", ["banks"]),
                _response("b", ["investment"]),
                _response("c", ["insurance"]),
            ],
            required=2,
        )
        assert not outcome.reached
        assert not outcome.labels

    def test_stricter_requirement(self):
        responses = [
            _response("a", ["banks"]),
            _response("b", ["banks"]),
            _response("c", ["banks"]),
            _response("d", ["investment"]),
            _response("e", ["investment"]),
        ]
        assert consensus_labels(responses, required=3).reached
        assert not consensus_labels(responses, required=4).reached

    def test_multiple_backed_categories(self):
        responses = [
            _response("a", ["banks", "investment"]),
            _response("b", ["banks", "investment"]),
            _response("c", ["insurance"]),
        ]
        outcome = consensus_labels(responses, required=2)
        assert outcome.labels.layer2_slugs() == {"banks", "investment"}

    def test_empty_responses(self):
        assert not consensus_labels([], required=2).reached


class TestWorker:
    def test_deterministic(self, medium_world):
        org = next(medium_world.iter_organizations())
        worker = MTurkWorker("w1", seed=3)
        a = worker.classify(org, reward_cents=30)
        b = worker.classify(org, reward_cents=30)
        assert a == b

    def test_options_restrict_answers(self, medium_world):
        org = next(medium_world.iter_organizations())
        worker = MTurkWorker("w1", seed=3)
        options = ["banks", "hospitals"]
        for reward in (10, 30, 60):
            response = worker.classify(org, reward, options=options)
            assert response.labels.layer2_slugs() <= set(options)

    def test_positive_minutes(self, medium_world):
        worker = MTurkWorker("w2")
        for org in list(medium_world.iter_organizations())[:20]:
            assert worker.classify(org, 30).minutes > 0


@pytest.fixture(scope="module")
def org_groups(medium_world):
    orgs = list(medium_world.iter_organizations())
    finance = [o for o in orgs if "finance" in o.truth.layer1_slugs()][:20]
    tech = [o for o in orgs if o.is_tech][:20]
    return finance, tech


class TestPlatform:
    def test_coverage_increases_with_reward(self, org_groups):
        finance, tech = org_groups
        platform = MTurkPlatform(seed=2)
        low = platform.run_batch(finance + tech, reward_cents=10)
        high = platform.run_batch(finance + tech, reward_cents=60)
        assert high.coverage >= low.coverage

    def test_consensus_accuracy_high(self, medium_world, org_groups):
        finance, tech = org_groups
        platform = MTurkPlatform(seed=2)
        batch = platform.run_batch(finance + tech, reward_cents=30)
        hits = total = 0
        lookup = {o.org_id: o for o in finance + tech}
        for task in batch.tasks:
            if not task.outcome.reached:
                continue
            total += 1
            hits += task.outcome.labels.overlaps_layer2(
                lookup[task.org_id].truth
            )
        assert total > 10
        assert hits / total >= 0.80  # paper: 90-100% loose match

    def test_stricter_consensus_trades_coverage_for_accuracy(
        self, org_groups
    ):
        finance, tech = org_groups
        platform = MTurkPlatform(seed=2)
        loose_batch = platform.run_batch(
            tech, 30, workers_per_task=3, required=2
        )
        strict_batch = platform.run_batch(
            tech, 30, workers_per_task=5, required=4
        )
        assert strict_batch.coverage <= loose_batch.coverage

    def test_cost_accounting(self, org_groups):
        finance, _ = org_groups
        platform = MTurkPlatform(seed=2)
        batch = platform.run_batch(finance, reward_cents=30)
        expected = len(finance) * 3 * 0.30 * 1.05
        assert batch.total_cost_dollars == pytest.approx(expected)

    def test_wages_positive_and_dispersed(self, org_groups):
        finance, tech = org_groups
        platform = MTurkPlatform(seed=2)
        batch = platform.run_batch(finance + tech, reward_cents=30)
        wages = batch.hourly_wages()
        assert all(wage > 0 for wage in wages)
        assert max(wages) > 2 * min(wages)  # wide dispersion (Figure 6)

    def test_cost_estimates_match_paper_scale(self):
        # ~20.7K ASes x 5 workers x 30c -> >= $31,000.
        assert estimate_cost_dollars(20700, 30, 5) >= 31000
        # ~22K ASes x 3 workers x 10c -> about $6,000-7,000.
        assert 5500 <= estimate_cost_dollars(22000, 10, 3) <= 8000


class TestCrowdworkIntegration:
    def test_apply_crowdwork_improves_or_holds_accuracy(self, medium_world):
        from repro import SystemConfig, build_asdb
        from repro.evaluation import build_gold_standard, evaluate_stages

        gs = build_gold_standard(medium_world, seed=0)
        built = build_asdb(
            medium_world,
            SystemConfig(seed=1,
                         exclude_asns_from_training=tuple(gs.asns())),
        )
        dataset = built.asdb.classify_all()
        platform = MTurkPlatform(seed=9)
        outcome = apply_crowdwork(
            medium_world, dataset, platform, asns=gs.asns()
        )
        assert outcome.escalated_asns
        before = evaluate_stages(dataset, gs)
        after = evaluate_stages(outcome.dataset, gs)
        # Appendix B: accuracy moves by only a few points either way.
        delta = (
            after.overall_l1_accuracy.value
            - before.overall_l1_accuracy.value
        )
        assert -0.05 <= delta <= 0.10

    def test_non_escalated_records_untouched(self, medium_world):
        from repro import SystemConfig, build_asdb
        from repro.core import Stage

        built = build_asdb(medium_world, SystemConfig(seed=1))
        sample = medium_world.asns()[:120]
        for asn in sample:
            built.asdb.classify(asn)
        dataset = built.asdb.dataset
        outcome = apply_crowdwork(
            medium_world, dataset, MTurkPlatform(seed=9), asns=sample
        )
        for record in dataset:
            if record.stage not in (
                Stage.ZERO_SOURCES, Stage.ONE_SOURCE, Stage.MULTI_DISAGREE
            ):
                merged = outcome.dataset.get(record.asn)
                assert merged.labels == record.labels
