"""Tests for the synthetic world generator and ground-truth model."""

import collections
import random

import pytest

from repro.taxonomy import LabelSet
from repro.world import ASInfo, Organization, World, WorldConfig, generate_world
from repro.world import distributions, names
from repro.whois.records import RIR


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_orgs=600, seed=42))


class TestWorldStructure:
    def test_every_as_has_an_owner(self, world):
        for asn in world.asns():
            org = world.org_of_asn(asn)
            assert org.truth

    def test_truth_matches_owner(self, world):
        asn = world.asns()[0]
        assert world.truth(asn) == world.org_of_asn(asn).truth

    def test_some_orgs_own_multiple_ases(self, world):
        counts = collections.Counter(
            info.org_id for info in world.ases.values()
        )
        assert any(count > 1 for count in counts.values())

    def test_asns_of_org_inverse(self, world):
        for asn in world.asns()[:50]:
            org_id = world.ases[asn].org_id
            assert asn in world.asns_of_org(org_id)

    def test_registry_covers_every_as(self, world):
        for asn in world.asns():
            assert asn in world.registry

    def test_duplicate_org_rejected(self):
        world = World()
        org = Organization(
            org_id="x", name="X", truth=LabelSet.from_layer2_slugs(["isp"]),
            country="US", city="Y", address="1 St", phone="+1",
        )
        world.add_organization(org)
        with pytest.raises(ValueError):
            world.add_organization(org)

    def test_as_requires_known_org(self):
        world = World()
        with pytest.raises(KeyError):
            world.add_as(ASInfo(asn=1, org_id="nope", rir=RIR.ARIN,
                                as_name="X-AS"))


class TestCalibration:
    def test_tech_fraction_near_64_percent(self, world):
        orgs = list(world.iter_organizations())
        tech = sum(1 for org in orgs if org.is_tech)
        assert 0.55 <= tech / len(orgs) <= 0.73

    def test_isp_is_the_dominant_category(self, world):
        counts = collections.Counter()
        for org in world.iter_organizations():
            for slug in org.truth.layer2_slugs():
                counts[slug] += 1
        assert counts.most_common(1)[0][0] == "isp"

    def test_field_availability_close_to_paper(self, world):
        stats = world.registry.field_availability()
        assert stats["name"] == 1.0                  # 100%
        assert stats["country"] >= 0.98              # 99.7%
        assert 0.75 <= stats["domain"] <= 0.95       # 87.1%
        assert 0.30 <= stats["phone"] <= 0.60        # 45%
        assert 0.45 <= stats["address"] <= 0.75      # 61.7%

    def test_hosting_lacks_domains_more_often(self, world):
        def no_domain_rate(predicate):
            orgs = [o for o in world.iter_organizations() if predicate(o)]
            return sum(1 for o in orgs if o.domain is None) / len(orgs)

        hosting = no_domain_rate(
            lambda o: "hosting" in o.truth.layer2_slugs()
        )
        other = no_domain_rate(
            lambda o: "hosting" not in o.truth.layer2_slugs()
        )
        assert hosting > other

    def test_some_multi_service_tech_orgs(self, world):
        multi = [
            org for org in world.iter_organizations()
            if len(org.truth.layer2_slugs()) > 1
        ]
        assert multi
        assert all(org.is_tech or True for org in multi)

    def test_some_non_english_websites(self, world):
        languages = collections.Counter(
            site.language_code
            for domain in world.web.domains()
            if (site := world.web.fetch(domain)) is not None
        )
        non_english = sum(
            count for code, count in languages.items() if code != "en"
        )
        total = sum(languages.values())
        assert 0.35 <= non_english / total <= 0.62  # paper: 49%

    def test_some_sites_down(self, world):
        down = [d for d in world.web.domains() if world.web.is_down(d)]
        assert down


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = generate_world(WorldConfig(n_orgs=50, seed=7))
        b = generate_world(WorldConfig(n_orgs=50, seed=7))
        assert a.asns() == b.asns()
        for asn in a.asns():
            assert a.registry.raw(asn).text == b.registry.raw(asn).text
            assert a.truth(asn) == b.truth(asn)

    def test_different_seed_different_world(self):
        a = generate_world(WorldConfig(n_orgs=50, seed=7))
        b = generate_world(WorldConfig(n_orgs=50, seed=8))
        assert any(
            a.registry.raw(x).text != b.registry.raw(y).text
            for x, y in zip(a.asns(), b.asns())
        )


class TestNames:
    def test_tokenize_strips_legal_suffixes(self):
        assert names.tokenize_name("Acme Hosting LLC") == ["acme", "hosting"]
        assert names.tokenize_name("The FiberLink Group Inc") == ["fiberlink"]

    def test_as_handle_derives_from_name(self):
        rng = random.Random(1)
        handle = names.as_handle_for("FiberLink Communications", rng)
        assert "FIBERLINK" in handle

    def test_domain_for_uses_country_tld(self):
        rng = random.Random(2)
        domain = names.domain_for("Acme Hosting", "DE", rng)
        assert domain.startswith("acmehosting.")

    def test_org_names_unique(self):
        rng = random.Random(3)
        gen = names.NameGenerator(rng)
        generated = [gen.org_name("isp") for _ in range(100)]
        assert len(set(generated)) == 100

    def test_sample_layer2_distribution_valid(self):
        rng = random.Random(4)
        for _ in range(200):
            slug = distributions.sample_layer2(rng)
            assert slug in distributions.LAYER2_WEIGHTS
