"""The content-addressed feature cache and executor output equivalence.

Covers the :class:`~repro.ml.FeatureCache` memo itself, its wiring into
:class:`~repro.ml.WebClassificationPipeline` (hit/miss accounting, the
``asdb_featcache_*`` metric families, invalidation on ``fit``), and the
PR's acceptance criterion: ``classify_all`` output is byte-identical —
CSV *and* JSON — across the sequential path, the thread batch engine,
the process batch engine, and a pre-warmed feature cache.
"""

import random

import pytest

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core.persistence import dataset_to_json
from repro.ml import FeatureCache, build_training_examples, content_digest
from repro.obs import MetricsRegistry


def _world(seed=5, n_orgs=60):
    return generate_world(
        WorldConfig(n_orgs=n_orgs, seed=seed, multi_as_probability=0.5)
    )


class TestFeatureCacheUnit:
    def test_get_put_roundtrip(self):
        cache = FeatureCache()
        key = content_digest("some scraped corpus")
        assert cache.get(key) is None
        cache.put(key, (0.25, 0.75))
        assert cache.get(key) == (0.25, 0.75)
        assert len(cache) == 1

    def test_stats_track_hits_and_misses(self):
        cache = FeatureCache()
        cache.get("absent")
        cache.put("present", (0.1, 0.2))
        cache.get("present")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = FeatureCache()
        cache.put("a", (0.0, 0.0))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_digest_is_content_addressed(self):
        assert content_digest("abc") == content_digest("abc")
        assert content_digest("abc") != content_digest("abd")
        assert content_digest("") != content_digest(" ")


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def system(self):
        world = _world()
        registry = MetricsRegistry()
        built = build_asdb(
            world, SystemConfig(seed=7, metrics=registry)
        )
        return world, registry, built

    def _domains(self, world, count=25):
        return sorted(world.web.domains())[:count]

    def test_warm_repeat_is_all_hits_and_identical(self, system):
        world, _, built = system
        pipeline = built.ml_pipeline
        pipeline.feature_cache.clear()
        domains = self._domains(world)
        cold = pipeline.classify_domains(domains)
        before = pipeline.feature_cache.stats()
        warm = pipeline.classify_domains(domains)
        after = pipeline.feature_cache.stats()
        assert warm == cold  # exact floats, not approximate
        assert after.hits - before.hits == after.size
        assert after.misses == before.misses

    def test_scalar_and_batch_share_the_cache(self, system):
        world, _, built = system
        pipeline = built.ml_pipeline
        pipeline.feature_cache.clear()
        domains = self._domains(world, count=10)
        scalar = [pipeline.classify_domain(d) for d in domains]
        before = pipeline.feature_cache.stats()
        batch = pipeline.classify_domains(domains)
        after = pipeline.feature_cache.stats()
        assert batch == scalar
        assert after.misses == before.misses  # batch was served warm

    def test_metric_families_exported(self, system):
        world, registry, built = system
        built.ml_pipeline.classify_domains(self._domains(world, count=5))
        snapshot = registry.to_prometheus()
        assert "asdb_featcache_lookups_total" in snapshot
        assert "asdb_featcache_size" in snapshot
        lookups = registry.counter(
            "asdb_featcache_lookups_total", "", ("outcome",)
        )
        stats = built.ml_pipeline.feature_cache.stats()
        assert lookups.value(outcome="hit") == stats.hits
        assert lookups.value(outcome="miss") == stats.misses
        size = registry.gauge("asdb_featcache_size", "")
        assert size.value() == stats.size

    def test_fit_invalidates_the_cache(self, system):
        world, _, built = system
        pipeline = built.ml_pipeline
        pipeline.classify_domains(self._domains(world, count=5))
        assert len(pipeline.feature_cache) > 0
        # Refit: any cached scores predate the new model and must not
        # survive it.
        examples = build_training_examples(
            world, built.dnb, random.Random(71)
        )
        pipeline.fit(examples)
        assert len(pipeline.feature_cache) == 0


class TestExecutorByteIdentity:
    """Acceptance: CSV and JSON exports byte-identical across paths."""

    @pytest.fixture(scope="class")
    def baseline(self):
        world = _world(seed=11, n_orgs=50)
        dataset = build_asdb(
            world, SystemConfig(seed=9)
        ).asdb.classify_all()
        return world, dataset.to_csv(), dataset_to_json(dataset)

    def test_thread_batch_identical(self, baseline):
        world, csv_text, json_text = baseline
        dataset = build_asdb(
            world, SystemConfig(seed=9, workers=4, executor="thread")
        ).asdb.classify_all()
        assert dataset.to_csv() == csv_text
        assert dataset_to_json(dataset) == json_text

    def test_process_batch_identical(self, baseline):
        world, csv_text, json_text = baseline
        dataset = build_asdb(
            world, SystemConfig(seed=9, workers=2, executor="process")
        ).asdb.classify_all()
        assert dataset.to_csv() == csv_text
        assert dataset_to_json(dataset) == json_text

    def test_prewarmed_feature_cache_identical(self, baseline):
        world, csv_text, json_text = baseline
        built = build_asdb(world, SystemConfig(seed=9))
        # Warm the score cache with every scrapable domain, then verify
        # the cached path reproduces the cold output byte for byte.
        built.ml_pipeline.classify_domains(sorted(world.web.domains()))
        dataset = built.asdb.classify_all()
        assert dataset.to_csv() == csv_text
        assert dataset_to_json(dataset) == json_text

    def test_executor_validation(self):
        world = _world(seed=11, n_orgs=5)
        with pytest.raises(ValueError):
            build_asdb(world, SystemConfig(seed=9, executor="fibers"))
