"""Tests for the versioned snapshot store and the incremental refresh
engine (the Section-5.3 maintenance tentpole)."""

import json

import pytest

from repro import SystemConfig, build_asdb
from repro.core import (
    ASdbDataset,
    ASdbRecord,
    SnapshotCorruption,
    SnapshotError,
    SnapshotStore,
    Stage,
    dataset_from_json,
    dataset_to_json,
)
from repro.obs import MetricsRegistry, narrate_sweep
from repro.taxonomy import LabelSet
from repro.whois import WhoisFacts, render
from repro.whois.records import RIR
from repro.world import WorldConfig, generate_world, simulate_churn


def _record(asn, slugs=("isp",), stage=Stage.ONE_SOURCE, **kwargs):
    return ASdbRecord(
        asn=asn,
        labels=LabelSet.from_layer2_slugs(list(slugs)),
        stage=stage,
        **kwargs,
    )


def _dataset(*records):
    dataset = ASdbDataset()
    for record in records:
        dataset.add(record)
    return dataset


def _raw(asn, name):
    facts = WhoisFacts(
        asn=asn, as_name=f"AS{asn}", org_name=name,
        emails=(f"abuse@org{asn}.example",), country="US",
    )
    return render(facts, RIR.ARIN)


class TestSnapshotStore:
    def test_first_version_is_verbatim_full_json(self, tmp_path):
        dataset = _dataset(_record(64512), _record(64513, ("hosting",)))
        store = SnapshotStore(tmp_path / "store")
        info = store.save(dataset, window=(-1, 0))
        assert info.version == 1 and info.kind == "full"
        # The stored document is byte-identical to dataset_to_json.
        assert store.read_json(1) == dataset_to_json(dataset)
        on_disk = (tmp_path / "store" / info.filename).read_text()
        assert on_disk == dataset_to_json(dataset)

    def test_second_version_is_a_delta(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save(_dataset(_record(1), _record(2), _record(3)))
        changed = _dataset(
            _record(1),
            _record(2, ("hosting",)),   # relabeled
            _record(4),                  # added; 3 removed
        )
        info = store.save(changed, window=(0, 90))
        assert info.kind == "delta" and info.parent == 1
        assert info.changed == 2 and info.removed == 1
        delta = json.loads(
            (tmp_path / "store" / info.filename).read_text()
        )
        assert delta["removed"] == [3]
        assert [item["asn"] for item in delta["changed"]] == [2, 4]

    def test_every_version_reloads_exactly(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        v1 = _dataset(_record(1), _record(2))
        v2 = _dataset(_record(1), _record(2, ("hosting",)), _record(3))
        v3 = _dataset(_record(2, ("hosting",)), _record(3))
        for dataset in (v1, v2, v3):
            store.save(dataset)
        for version, dataset in ((1, v1), (2, v2), (3, v3)):
            assert store.read_json(version) == dataset_to_json(dataset)
            reloaded = store.load(version)
            assert [record for record in reloaded] == list(dataset)

    def test_reopened_store_reads_history(self, tmp_path):
        root = tmp_path / "store"
        first = SnapshotStore(root)
        first.save(_dataset(_record(1)))
        first.save(_dataset(_record(1), _record(2)), window=(0, 30))
        first.set_meta({"n_orgs": 5, "world_seed": 9})

        reopened = SnapshotStore(root)
        assert len(reopened) == 2
        assert reopened.meta == {"n_orgs": 5, "world_seed": 9}
        assert reopened.info(2).since_day == 0
        assert reopened.info(2).through_day == 30
        assert len(reopened.load(2)) == 2

    def test_degraded_sources_survive_snapshots(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save(_dataset(_record(1)))
        store.save(
            _dataset(_record(1, degraded_sources=("dnb", "zvelo")))
        )
        record = store.load(2).get(1)
        assert record.degraded_sources == ("dnb", "zvelo")

    def test_corrupted_document_detected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        info = store.save(_dataset(_record(1)))
        path = tmp_path / "store" / info.filename
        document = json.loads(path.read_text())
        document["records"][0]["stage"] = Stage.MULTI_AGREE.value
        path.write_text(json.dumps(document, indent=2))
        with pytest.raises(SnapshotCorruption):
            store.load(1)

    def test_unknown_version_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with pytest.raises(SnapshotError):
            store.load()
        store.save(_dataset(_record(1)))
        with pytest.raises(SnapshotError):
            store.info(2)
        with pytest.raises(SnapshotError):
            store.diff(0, 1)

    def test_diff_between_versions(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save(_dataset(_record(1), _record(2), _record(5)))
        store.save(
            _dataset(
                _record(1, ("hosting",)),
                _record(2, ("isp",), stage=Stage.MULTI_AGREE),
                _record(7),
            )
        )
        diff = store.diff(1, 2)
        assert diff.added == (7,)
        assert diff.removed == (5,)
        assert diff.relabeled == (1,)
        assert diff.stage_changed == (2,)
        assert diff.changed_asns == (1, 2, 5, 7)


class TestIncrementalRefresh:
    """The daemon + store against a churning world."""

    @pytest.fixture()
    def built(self, tmp_path):
        world = generate_world(WorldConfig(n_orgs=60, seed=77))
        built = build_asdb(
            world,
            SystemConfig(
                seed=1,
                train_ml=False,
                workers=2,
                snapshot_dir=str(tmp_path / "releases"),
            ),
        )
        return world, built

    def test_refresh_over_unchanged_registry_reclassifies_zero(
        self, built
    ):
        world, system = built
        daemon = system.daemon
        baseline = daemon.sweep(current_day=0)
        assert baseline.reclassified == len(world.asns())
        snapshot = dataset_from_json(dataset_to_json(system.asdb.dataset))

        second = daemon.sweep(current_day=90)
        assert second.reclassified == 0
        assert second.new_asns == () and second.updated_asns == ()
        # Nothing changed on disk either: v2 is an empty delta.
        assert system.snapshots.info(2).changed == 0
        assert system.snapshots.info(2).removed == 0
        assert system.snapshots.diff(1, 2).empty
        assert system.asdb.dataset.diff(snapshot).empty

    def test_churn_reclassifies_exactly_the_changed_set(self, built):
        world, system = built
        daemon = system.daemon
        daemon.sweep(current_day=0)

        stats = simulate_churn(world, days=200, seed=5, start_day=1)
        assert stats.changed_asns, "churn produced no changes"
        report = daemon.sweep(current_day=200)
        assert report.changed_asns == stats.changed_asns
        assert report.reclassified == len(stats.changed_asns)
        assert tuple(sorted(report.new_asns)) == stats.new_asns
        assert tuple(sorted(report.updated_asns)) == stats.updated_asns
        # The stored delta touches only churned ASNs ...
        diff = system.snapshots.diff(1, 2)
        assert not diff.removed
        assert set(diff.changed_asns) <= set(stats.changed_asns)
        # ... and every genuinely new AS appears in it.
        assert set(diff.added) == set(stats.new_asns)

    def test_no_asn_reclassified_twice_across_sweeps(self, built):
        """Regression for the unbounded sweep window: an AS registered
        after the sweep's cutoff must wait for the next sweep instead
        of being classified early *and* again."""
        world, system = built
        daemon = system.daemon
        daemon.sweep(current_day=0)

        future_asn = max(world.asns()) + 10
        world.registry.register(_raw(future_asn, "Future Org"), day=15)
        early = daemon.sweep(current_day=10)
        assert future_asn not in early.changed_asns
        assert future_asn not in system.asdb.dataset

        late = daemon.sweep(current_day=20)
        assert future_asn in late.new_asns
        assert future_asn not in late.updated_asns

        # Two-sweep churn scenario: windows partition the changes, so
        # no ASN is reclassified in both sweeps.
        first_churn = simulate_churn(world, days=30, seed=2,
                                     start_day=21)
        sweep_one = daemon.sweep(current_day=50)
        second_churn = simulate_churn(world, days=30, seed=3,
                                      start_day=51)
        sweep_two = daemon.sweep(current_day=80)
        assert sweep_one.changed_asns == first_churn.changed_asns
        assert not (
            set(sweep_one.changed_asns) - set(second_churn.changed_asns)
        ) & set(sweep_two.changed_asns)

    def test_sweep_day_cannot_go_backwards(self, built):
        _, system = built
        daemon = system.daemon
        daemon.sweep(current_day=10)
        with pytest.raises(ValueError):
            daemon.sweep(current_day=5)

    def test_sweep_metrics_exported(self, tmp_path):
        registry = MetricsRegistry()
        world = generate_world(WorldConfig(n_orgs=40, seed=8))
        built = build_asdb(
            world,
            SystemConfig(
                seed=1,
                train_ml=False,
                metrics=registry,
                snapshot_dir=str(tmp_path / "releases"),
            ),
        )
        baseline = built.daemon.sweep(current_day=0)
        simulate_churn(world, days=300, seed=4, start_day=1)
        report = built.daemon.sweep(current_day=300)
        assert registry.counter("asdb_sweep_total").total() == 2
        assert registry.counter(
            "asdb_sweep_reclassified_total"
        ).total() == baseline.reclassified + report.reclassified
        assert registry.gauge("asdb_sweep_last_day").value() == 300
        assert registry.gauge("asdb_snapshot_version").value() == 2
        text = registry.to_prometheus()
        assert "asdb_sweep_changed_total" in text

    def test_traced_sweep_has_phase_spans_and_narration(self, tmp_path):
        world = generate_world(WorldConfig(n_orgs=40, seed=8))
        built = build_asdb(
            world,
            SystemConfig(
                seed=1,
                train_ml=False,
                trace=True,
                snapshot_dir=str(tmp_path / "releases"),
            ),
        )
        report = built.daemon.sweep(current_day=0)
        assert report.trace is not None
        names = [span.name for span in report.trace.spans]
        assert names == ["window", "purge", "classify", "snapshot"]
        text = narrate_sweep(report)
        assert "baseline through day 0" in text
        assert "stored snapshot v1" in text

    def test_fault_free_snapshot_json_matches_direct_export(
        self, built
    ):
        world, system = built
        system.daemon.sweep(current_day=0)
        assert system.snapshots.read_json(1) == dataset_to_json(
            system.asdb.dataset
        )


class TestSweepReportWindows:
    def test_baseline_window_is_explicit(self):
        from repro.core import SweepReport

        report = SweepReport(
            since_day=-1, through_day=13,
            new_asns=tuple(range(28)), updated_asns=(), reclassified=28,
        )
        assert report.is_baseline
        assert report.window_days == 14
        assert report.updates_per_week == pytest.approx(14.0)

    def test_same_day_sweep_reports_zero_rate(self):
        from repro.core import SweepReport

        report = SweepReport(
            since_day=7, through_day=7,
            new_asns=(), updated_asns=(), reclassified=0,
        )
        assert report.window_days == 0
        assert report.updates_per_week == 0.0

    def test_incremental_window(self):
        from repro.core import SweepReport

        report = SweepReport(
            since_day=0, through_day=7,
            new_asns=tuple(range(100)),
            updated_asns=tuple(range(100, 140)),
            reclassified=140,
        )
        assert not report.is_baseline
        assert report.window_days == 7
        assert report.updates_per_week == pytest.approx(140.0)


class TestBoundedChangedSince:
    def test_upper_bound_hides_future_changes(self):
        from repro.whois.registry import WhoisRegistry

        registry = WhoisRegistry()
        registry.register(_raw(10, "Early Org"), day=1)
        registry.register(_raw(20, "Late Org"), day=9)
        registry.update(_raw(10, "Early Org Renamed"), day=8)

        assert registry.changed_since(0, through=5) == [10]
        assert registry.changed_since(5, through=8) == [10]
        assert registry.changed_since(0) == [10, 20]
        assert registry.changed_since(8, through=9) == [20]
        assert registry.changed_since(9, through=9) == []


class TestSweepTraceTags:
    """Satellite: per-AS traces carry the sweep window (and run id)
    that produced them, so a ledger can attribute any trace to its
    sweep."""

    def _built(self, tmp_path, runlog=None):
        world = generate_world(WorldConfig(n_orgs=40, seed=77))
        return world, build_asdb(
            world,
            SystemConfig(
                seed=1, train_ml=False, trace=True,
                snapshot_dir=str(tmp_path / "releases"), runlog=runlog,
            ),
        )

    def test_baseline_sweep_tags_every_trace(self, tmp_path):
        world, system = self._built(tmp_path)
        system.daemon.sweep(current_day=0)
        traces = [
            record.trace for record in system.asdb.dataset
            if record.trace is not None
        ]
        assert len(traces) == len(world.asns())
        for trace in traces:
            assert trace.tags["sweep_since"] == -1
            assert trace.tags["sweep_through"] == 0
            assert "run" not in trace.tags  # no ledger attached

    def test_incremental_sweep_retags_only_churned(self, tmp_path):
        world, system = self._built(tmp_path)
        system.daemon.sweep(current_day=0)
        stats = simulate_churn(world, days=60, seed=5, start_day=1)
        assert stats.changed_asns
        system.daemon.sweep(current_day=60)
        for record in system.asdb.dataset:
            if record.trace is None:
                continue
            expected = (
                (0, 60) if record.asn in stats.changed_asns else (-1, 0)
            )
            assert (
                record.trace.tags["sweep_since"],
                record.trace.tags["sweep_through"],
            ) == expected

    def test_run_id_tag_with_ledger(self, tmp_path):
        from repro.obs import RunLog, read_ledger

        runlog = RunLog(str(tmp_path / "sweep.ndjson"), kind="sweep")
        _, system = self._built(tmp_path, runlog=runlog)
        system.daemon.sweep(current_day=0)
        runlog.finish()
        for record in system.asdb.dataset:
            assert record.trace.tags["run"] == runlog.run_id
        # The ledger's as.trace events carry the same tags.
        traced = [
            event for event in read_ledger(str(tmp_path / "sweep.ndjson"))
            if event["event"] == "as.trace"
        ]
        assert traced
        assert all(
            event["tags"]["run"] == runlog.run_id for event in traced
        )
