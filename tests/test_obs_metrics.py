"""Unit tests for repro.obs.metrics and repro.obs.instrument."""

import json

import pytest

from repro.datasources.base import Query, SourceEntry, SourceMatch
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    InstrumentedSource,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    instrument_source,
    timed,
)
from repro.taxonomy import LabelSet


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter("events_total")
        assert counter.value() == 0.0
        assert counter.total() == 0.0

    def test_inc_accumulates(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("lookups_total", labelnames=("source", "outcome"))
        counter.inc(source="dnb", outcome="match")
        counter.inc(3, source="dnb", outcome="miss")
        assert counter.value(source="dnb", outcome="match") == 1
        assert counter.value(source="dnb", outcome="miss") == 3
        assert counter.total() == 4

    def test_zero_inc_registers_series(self):
        counter = Counter("lookups_total", labelnames=("outcome",))
        counter.inc(0, outcome="miss")
        assert ("miss",) in counter.series()

    def test_negative_inc_rejected(self):
        counter = Counter("events_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = Counter("lookups_total", labelnames=("source",))
        with pytest.raises(ValueError):
            counter.inc(1, outcome="match")
        with pytest.raises(ValueError):
            counter.inc(1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_labeled(self):
        gauge = Gauge("rate", labelnames=("kind",))
        gauge.set(0.5, kind="hit")
        assert gauge.value(kind="hit") == 0.5
        assert gauge.value(kind="miss") == 0.0


class TestHistogram:
    def test_observe_updates_count_sum_mean(self):
        histogram = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        assert histogram.mean() == pytest.approx(1.85)

    def test_bucket_counts_are_cumulative(self):
        histogram = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        series = histogram.series()[()]
        assert series.bucket_counts == [1, 2, 3]
        assert series.count == 4

    def test_quantile_estimates_from_buckets(self):
        histogram = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            histogram.observe(0.05)
        histogram.observe(5.0)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(1.0) == 10.0

    def test_empty_quantile_and_mean(self):
        histogram = Histogram("latency_seconds")
        assert histogram.quantile(0.95) == 0.0
        assert histogram.mean() == 0.0

    def test_time_context_manager_observes(self):
        histogram = Histogram("latency_seconds")
        with histogram.time():
            pass
        assert histogram.count() == 1
        assert histogram.sum() >= 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("latency_seconds", buckets=(1.0, 0.1))

    def test_default_buckets_are_log_scale_latency(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 1e-5
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("events_total")
        second = registry.counter("events_total")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("events_total")
        with pytest.raises(ValueError):
            registry.gauge("events_total")

    def test_labelnames_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("events_total", labelnames=("b",))

    def test_iteration_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zzz")
        registry.gauge("aaa")
        assert [metric.name for metric in registry] == ["aaa", "zzz"]

    def test_get(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        assert registry.get("events_total") is counter
        assert registry.get("missing") is None


class TestPrometheusExposition:
    def test_counter_lines(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "lookups_total", "Lookups.", ("source", "outcome")
        )
        counter.inc(2, source="dnb", outcome="match")
        text = registry.to_prometheus()
        assert "# HELP lookups_total Lookups." in text
        assert "# TYPE lookups_total counter" in text
        assert 'lookups_total{source="dnb",outcome="match"} 2' in text

    def test_histogram_lines(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.to_prometheus()
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_count 2" in text
        assert "latency_seconds_sum 0.55" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", labelnames=("path",))
        counter.inc(1, path='a"b\\c')
        assert 'path="a\\"b\\\\c"' in registry.to_prometheus()

    def test_empty_registry_is_empty_text(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestJsonSnapshot:
    def test_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labelnames=("kind",)).inc(
            1, kind="x"
        )
        registry.gauge("rate").set(0.5)
        registry.histogram("latency_seconds", buckets=(1.0,)).observe(0.5)
        document = json.loads(registry.to_json())
        assert document["counters"]["events_total"]["series"] == [
            {"labels": ["x"], "value": 1.0}
        ]
        assert document["gauges"]["rate"]["series"][0]["value"] == 0.5
        histogram = document["histograms"]["latency_seconds"]
        assert histogram["buckets"] == [1.0]
        assert histogram["series"][0]["count"] == 1


class TestNullRegistry:
    def test_instruments_record_nothing(self):
        counter = NULL_REGISTRY.counter("events_total")
        counter.inc(5)
        assert counter.total() == 0.0
        gauge = NULL_REGISTRY.gauge("rate")
        gauge.set(1.0)
        assert gauge.value() == 0.0
        histogram = NULL_REGISTRY.histogram("latency_seconds")
        with histogram.time():
            histogram.observe(1.0)
        assert histogram.count() == 0

    def test_snapshot_is_empty(self):
        assert NullRegistry().to_prometheus() == ""


class _FakeSource:
    name = "fake"

    def __init__(self):
        self.queries = []

    def lookup(self, query):
        self.queries.append(query)
        if query.asn == 1:
            entry = SourceEntry(
                entity_id="e", org_id="o", name="Org", domain="org.net",
                native_categories=(), labels=LabelSet(),
            )
            return SourceMatch(source=self.name, entry=entry)
        return None

    def lookup_by_org(self, org_id):
        return "by-org"

    def coverage_count(self):
        return 7


class TestInstrumentedSource:
    def test_counts_match_and_miss(self):
        registry = MetricsRegistry()
        source = InstrumentedSource(_FakeSource(), registry)
        assert source.lookup(Query(asn=1)) is not None
        assert source.lookup(Query(asn=2)) is None
        counter = registry.get("asdb_source_lookups_total")
        assert counter.value(source="fake", outcome="match") == 1
        assert counter.value(source="fake", outcome="miss") == 1

    def test_preregisters_both_outcomes(self):
        registry = MetricsRegistry()
        InstrumentedSource(_FakeSource(), registry)
        counter = registry.get("asdb_source_lookups_total")
        assert counter.value(source="fake", outcome="match") == 0
        assert ("fake", "match") in counter.series()
        assert ("fake", "miss") in counter.series()

    def test_observes_latency(self):
        registry = MetricsRegistry()
        source = InstrumentedSource(_FakeSource(), registry)
        source.lookup(Query(asn=1))
        histogram = registry.get("asdb_source_lookup_seconds")
        assert histogram.count(source="fake") == 1

    def test_delegates_rest_of_contract(self):
        inner = _FakeSource()
        source = InstrumentedSource(inner, MetricsRegistry())
        assert source.name == "fake"
        assert source.inner is inner
        assert source.lookup_by_org("o") == "by-org"
        assert source.coverage_count() == 7

    def test_instrument_source_null_passthrough(self):
        inner = _FakeSource()
        assert instrument_source(inner, None) is inner
        assert instrument_source(inner, NULL_REGISTRY) is inner

    def test_instrument_source_idempotent(self):
        registry = MetricsRegistry()
        wrapped = instrument_source(_FakeSource(), registry)
        assert instrument_source(wrapped, registry) is wrapped


class TestTimedHelper:
    def test_observes_even_on_exception(self):
        histogram = Histogram("latency_seconds")
        with pytest.raises(RuntimeError):
            with timed(histogram):
                raise RuntimeError("boom")
        assert histogram.count() == 1

    def test_labels_forwarded(self):
        histogram = Histogram("latency_seconds", labelnames=("op",))
        with timed(histogram, op="scrape"):
            pass
        assert histogram.count(op="scrape") == 1
