"""Tests for the scan substrate, reporting helpers, and maintenance."""

import pytest

from repro.core import (
    Correction,
    CorrectionQueue,
    CorrectionStatus,
    MaintenanceDaemon,
    Stage,
    TicketAlreadyReviewedError,
    UnknownTicketError,
)
from repro.reporting import format_fraction, render_bars, render_table
from repro.scan import TELNET_PROPENSITY, TelnetScan
from repro.taxonomy import LabelSet
from repro.whois import WhoisFacts, render
from repro.whois.records import RIR


class TestTelnetScan:
    def test_scan_covers_every_as(self, medium_world):
        scan = TelnetScan(medium_world)
        assert len(scan) == len(medium_world.asns())

    def test_observation_fields(self, medium_world):
        scan = TelnetScan(medium_world)
        for observation in scan:
            assert observation.hosts_sampled > 0
            assert 0 <= observation.telnet_hosts <= observation.hosts_sampled

    def test_deterministic(self, medium_world):
        a = TelnetScan(medium_world, seed=4)
        b = TelnetScan(medium_world, seed=4)
        asn = medium_world.asns()[0]
        assert a.observation(asn) == b.observation(asn)

    def test_critical_infrastructure_exposes_more(self, medium_world):
        # Section 6's headline: utilities/government/finance > tech.
        scan = TelnetScan(medium_world)
        rates = scan.telnet_rate_by_layer1(
            lambda asn: medium_world.truth(asn).layer1_slugs()
        )
        tech_hits, tech_total = rates["computer_and_it"]
        tech_rate = tech_hits / tech_total
        for slug in ("utilities", "government", "finance"):
            hits, total = rates.get(slug, (0, 0))
            if total >= 5:
                assert hits / total > tech_rate

    def test_propensity_table_ordering(self):
        assert TELNET_PROPENSITY["utilities"] > TELNET_PROPENSITY[
            "computer_and_it"
        ]


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["Source", "Coverage"],
            [["D&B", "122/148 (82%)"], ["Zvelo", "138/148 (93%)"]],
            title="Table 3",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 3"
        assert "D&B" in text and "Zvelo" in text

    def test_render_bars(self):
        text = render_bars(["NAICS", "NAICSlite"], [0.31, 0.78])
        assert "NAICS" in text
        assert text.count("#") > 0

    def test_render_bars_empty(self):
        assert render_bars([], []) == ""

    def test_format_fraction(self):
        assert format_fraction(93, 121) == "93/121 (77%)"
        assert format_fraction(0, 0) == "-"


class TestMaintenance:
    def _raw(self, asn, name):
        facts = WhoisFacts(
            asn=asn, as_name=f"AS{asn}", org_name=name,
            emails=(f"abuse@org{asn}.example",), country="US",
        )
        return render(facts, RIR.ARIN)

    def test_sweep_classifies_new_registrations(self):
        from repro import SystemConfig, build_asdb
        from repro.world import WorldConfig, generate_world

        # A private world: the sweep mutates the registry.
        world = generate_world(WorldConfig(n_orgs=60, seed=77))
        built = build_asdb(world, SystemConfig(seed=1, train_ml=False))
        daemon = MaintenanceDaemon(built.asdb)
        first = daemon.sweep(current_day=0)
        # Everything is "new" on the first sweep.
        assert len(first.new_asns) == len(world.asns())
        assert first.reclassified == len(world.asns())

        # Register a fresh AS and update an existing one.
        new_asn = max(world.asns()) + 10
        world.registry.register(self._raw(new_asn, "Fresh Org"), day=5)
        victim = world.asns()[0]
        world.registry.update(world.registry.raw(victim), day=6)
        second = daemon.sweep(current_day=7)
        assert new_asn in second.new_asns
        assert victim in second.updated_asns
        assert second.reclassified == len(second.new_asns) + len(
            second.updated_asns
        )

    def test_updates_per_week(self):
        from repro.core.maintenance import SweepReport

        report = SweepReport(
            since_day=0, through_day=7,
            new_asns=tuple(range(100)),
            updated_asns=tuple(range(100, 140)),
            reclassified=140,
        )
        assert report.updates_per_week == pytest.approx(140.0)


class TestCorrections:
    @pytest.fixture()
    def asdb(self, medium_world):
        from repro import SystemConfig, build_asdb

        built = build_asdb(medium_world, SystemConfig(seed=1,
                                                      train_ml=False))
        for asn in medium_world.asns()[:20]:
            built.asdb.classify(asn)
        return built.asdb

    def test_submit_review_approve(self, asdb, medium_world):
        queue = CorrectionQueue(asdb)
        asn = medium_world.asns()[0]
        proposed = LabelSet.from_layer2_slugs(["banks"])
        ticket = queue.submit(
            Correction(asn=asn, proposed=proposed, submitter="alice")
        )
        assert len(queue.pending()) == 1
        correction = queue.review(ticket, approve=True)
        assert correction.status is CorrectionStatus.APPROVED
        assert asdb.dataset.get(asn).labels == proposed
        assert "community" in asdb.dataset.get(asn).sources

    def test_reject_leaves_dataset_untouched(self, asdb, medium_world):
        queue = CorrectionQueue(asdb)
        asn = medium_world.asns()[1]
        before = asdb.dataset.get(asn).labels
        ticket = queue.submit(
            Correction(
                asn=asn,
                proposed=LabelSet.from_layer2_slugs(["gambling"]),
                submitter="mallory",
            )
        )
        queue.review(ticket, approve=False)
        assert asdb.dataset.get(asn).labels == before

    def test_empty_proposal_rejected(self, asdb):
        queue = CorrectionQueue(asdb)
        with pytest.raises(ValueError):
            queue.submit(
                Correction(asn=1, proposed=LabelSet(), submitter="x")
            )

    def test_double_review_rejected(self, asdb, medium_world):
        queue = CorrectionQueue(asdb)
        ticket = queue.submit(
            Correction(
                asn=medium_world.asns()[2],
                proposed=LabelSet.from_layer2_slugs(["banks"]),
                submitter="alice",
            )
        )
        queue.review(ticket, approve=True)
        with pytest.raises(TicketAlreadyReviewedError):
            queue.review(ticket, approve=True)

    def test_unknown_ticket_named_error(self, asdb):
        queue = CorrectionQueue(asdb)
        with pytest.raises(UnknownTicketError):
            queue.review(0, approve=True)
        queue.submit(
            Correction(
                asn=1,
                proposed=LabelSet.from_layer2_slugs(["banks"]),
                submitter="alice",
            )
        )
        with pytest.raises(UnknownTicketError):
            queue.review(5, approve=True)
        with pytest.raises(UnknownTicketError):
            queue.review(-1, approve=True)

    def test_approved_correction_purges_org_cache(
        self, asdb, medium_world
    ):
        # Pick an AS whose record actually landed on the org cache, so
        # approval must purge every alias its siblings would hit.
        target = next(
            record for record in asdb.dataset
            if record.org_key and asdb.cache.get(record.org_key)
        )
        assert asdb.cache.get(target.org_key) is not None
        queue = CorrectionQueue(asdb)
        ticket = queue.submit(
            Correction(
                asn=target.asn,
                proposed=LabelSet.from_layer2_slugs(["banks"]),
                submitter="alice",
            )
        )
        queue.review(ticket, approve=True)
        cached = asdb.cache.get(target.org_key)
        # The stale classification is gone; the alias now serves the
        # corrected labels to future sibling lookups.
        assert cached is not None
        assert cached.labels == LabelSet.from_layer2_slugs(["banks"])
        for key in target.cache_keys:
            stale = asdb.cache.get(key)
            assert stale is None or stale.labels != target.labels
