"""Tests for per-category keyword profiles."""

from repro.taxonomy import keywords, naicslite


class TestKeywordProfiles:
    def test_every_layer2_has_keywords(self):
        for sub in naicslite.ALL_LAYER2:
            profile = keywords.keywords_for_layer2(sub.slug)
            assert len(profile) >= 3, sub.slug

    def test_keywords_are_lowercase_tokens(self):
        for slug, words in keywords.KEYWORDS_LAYER2.items():
            for word in words:
                assert word == word.lower(), (slug, word)
                assert " " not in word, (slug, word)

    def test_isp_hosting_profiles_overlap(self):
        # Deliberate overlap (e.g. "bandwidth", "network") drives realistic
        # classifier confusion between ISPs and hosting providers.
        isp = set(keywords.keywords_for_layer2("isp"))
        hosting = set(keywords.keywords_for_layer2("hosting"))
        assert isp & hosting

    def test_distant_profiles_are_mostly_disjoint(self):
        banks = set(keywords.keywords_for_layer2("banks"))
        isp = set(keywords.keywords_for_layer2("isp"))
        assert len(banks & isp) <= 1

    def test_layer1_union(self):
        union = set(keywords.keywords_for_layer1("computer_and_it"))
        assert "broadband" in union   # from isp
        assert "colocation" in union  # from hosting
        assert "firewall" in union    # from security

    def test_layer1_union_preserves_order_dedupes(self):
        union = keywords.keywords_for_layer1("computer_and_it")
        assert len(union) == len(set(union))

    def test_scraper_keywords_match_figure3(self):
        # The paper's Figure 3 lists the link keywords the scraper follows.
        for word in ("service", "about", "company", "network", "coverage",
                     "history"):
            assert word in keywords.SCRAPER_LINK_KEYWORDS

    def test_generic_words_not_category_specific(self):
        # Generic web filler must not include high-signal category terms.
        generic = set(keywords.GENERIC_WEB_WORDS)
        assert "broadband" not in generic
        assert "hosting" not in generic
        assert "bank" not in generic
