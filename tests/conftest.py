"""Shared fixtures: one medium synthetic world per test session."""

import pytest

from repro.world import WorldConfig, generate_world


@pytest.fixture(scope="session")
def small_world():
    """A small world for fast per-module tests."""
    return generate_world(WorldConfig(n_orgs=150, seed=101))


@pytest.fixture(scope="session")
def medium_world():
    """A medium world for statistical checks."""
    return generate_world(WorldConfig(n_orgs=600, seed=3))
