"""Tests for synthetic languages, detection, and translation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.web import (
    ENGLISH,
    LANGUAGES,
    by_code,
    category_text,
    detect_language,
    encode_text,
    translate_to_english,
)

NON_ENGLISH = [lang for lang in LANGUAGES if not lang.is_english]
_word = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


class TestLanguageCipher:
    @pytest.mark.parametrize("lang", NON_ENGLISH, ids=lambda l: l.code)
    def test_encode_decode_roundtrip(self, lang):
        for word in ("hosting", "broadband", "university", "a"):
            assert lang.decode_word(lang.encode_word(word)) == word

    def test_english_is_identity(self):
        assert ENGLISH.encode_word("hosting") == "hosting"
        assert ENGLISH.decode_word("hosting") == "hosting"

    def test_decode_rejects_foreign_words(self):
        xa = by_code("xa")
        xb = by_code("xb")
        assert xb.decode_word(xa.encode_word("hosting")) is None

    def test_suffixes_unambiguous(self):
        # No language's suffix may be a suffix of another's.
        for a in NON_ENGLISH:
            for b in NON_ENGLISH:
                if a is not b:
                    assert not a.suffix.endswith(b.suffix)

    @given(word=_word, lang=st.sampled_from(NON_ENGLISH))
    def test_roundtrip_property(self, word, lang):
        assert lang.decode_word(lang.encode_word(word)) == word


class TestDetection:
    @pytest.mark.parametrize("lang", NON_ENGLISH, ids=lambda l: l.code)
    def test_detects_each_language(self, lang):
        text = encode_text("hosting cloud server datacenter uptime", lang)
        assert detect_language(text) is lang

    def test_detects_english(self):
        assert detect_language("hosting cloud server uptime").is_english

    def test_empty_text_is_english(self):
        assert detect_language("").is_english


class TestTranslation:
    @pytest.mark.parametrize("lang", NON_ENGLISH, ids=lambda l: l.code)
    def test_full_roundtrip(self, lang):
        original = "hosting cloud server datacenter colocation uptime"
        result = translate_to_english(encode_text(original, lang))
        assert result.text == original
        assert result.detected is lang
        assert result.translated_fraction == 1.0

    def test_english_passthrough(self):
        result = translate_to_english("plain english text")
        assert result.text == "plain english text"
        assert result.detected.is_english

    def test_mixed_text_partially_translated(self):
        lang = by_code("xa")
        mixed = encode_text("hosting cloud server uptime", lang) + " Acme123"
        result = translate_to_english(mixed)
        assert "hosting" in result.text
        assert result.translated_fraction < 1.0

    @given(
        words=st.lists(_word, min_size=3, max_size=20),
        lang=st.sampled_from(NON_ENGLISH),
    )
    def test_translation_restores_cipher_text(self, words, lang):
        original = " ".join(words)
        encoded = encode_text(original, lang)
        result = translate_to_english(encoded)
        if result.detected is lang:
            assert result.text == original


class TestCorpus:
    def test_category_text_contains_keywords(self):
        rng = random.Random(7)
        text = category_text(rng, "isp", 400, keyword_weight=0.5)
        tokens = set(text.split())
        assert tokens & {"broadband", "fiber", "internet", "bandwidth"}

    def test_category_text_word_count(self):
        rng = random.Random(7)
        assert len(category_text(rng, "banks", 50).split()) == 50

    def test_none_category_has_no_keywords(self):
        rng = random.Random(7)
        text = category_text(rng, None, 300, keyword_weight=0.9)
        assert "broadband" not in text.split()

    def test_extra_keywords_injected(self):
        rng = random.Random(7)
        text = category_text(
            rng, "research", 400, keyword_weight=0.6,
            extra_keywords=("cloud", "computing"),
        )
        assert "cloud" in text.split()

    def test_deterministic_given_seed(self):
        a = category_text(random.Random(1), "isp", 100)
        b = category_text(random.Random(1), "isp", 100)
        assert a == b
