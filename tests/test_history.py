"""Tests for the temporal layer: snapshot checkpointing, as-of
reconstruction, per-AS timelines, churn analytics, and the
snapshot-store correctness fixes that ride along (rollback on failed
verification, missing-digest corruption, concurrent-writer detection,
streaming diff)."""

import json
import os

import pytest

from repro.core import (
    ASdbDataset,
    ASdbRecord,
    ReleaseHistory,
    SnapshotCorruption,
    SnapshotError,
    SnapshotStore,
    SqliteDatasetStore,
    Stage,
    categorization,
    dataset_to_json,
)
from repro.core.history import ABSENT, UNCLASSIFIED
from repro.taxonomy import LabelSet


def _record(asn, slugs=("isp",), stage=Stage.ONE_SOURCE, **kwargs):
    return ASdbRecord(
        asn=asn,
        labels=LabelSet.from_layer2_slugs(list(slugs)),
        stage=stage,
        **kwargs,
    )


def _dataset(*records):
    dataset = ASdbDataset()
    for record in records:
        dataset.add(record)
    return dataset


def _grow(store, versions):
    """Save a sequence of datasets with consecutive 90-day windows."""
    infos = []
    for epoch, dataset in enumerate(versions):
        window = (-1, 0) if epoch == 0 else (epoch * 90 - 90, epoch * 90)
        infos.append(store.save(dataset, window=window))
    return infos


class _LedgerStub:
    """Records emitted events like a RunLog would."""

    def __init__(self):
        self.events = []

    def emit(self, event, **fields):
        self.events.append((event, fields))


class TestCheckpointing:
    def _versions(self, count):
        """v1 plus ``count - 1`` one-record-changed successors."""
        out = [_dataset(_record(1), _record(2), _record(3))]
        for i in range(1, count):
            out.append(_dataset(
                _record(1, domain=f"rev{i}.example"), _record(2),
                _record(3)
            ))
        return out

    def test_promotion_at_k_deltas(self, tmp_path):
        store = SnapshotStore(tmp_path / "s", checkpoint_every=3)
        # v1 full; v2, v3 plain deltas (K-1 = 2 deltas: no promotion
        # yet); v4 is the 3rd consecutive delta -> checkpoint; v5 (K+1)
        # starts the next run as a plain delta.
        infos = _grow(store, self._versions(5))
        assert [info.kind for info in infos] == \
            ["full", "delta", "delta", "delta", "delta"]
        assert [info.checkpoint is not None for info in infos] == \
            [False, False, False, True, False]
        assert infos[3].checkpoint == "v0004.ckpt.json"
        assert (tmp_path / "s" / "v0004.ckpt.json").exists()
        # The delta document exists alongside the checkpoint — the
        # chain stays uniformly scannable.
        assert (tmp_path / "s" / "v0004.delta.json").exists()

    def test_promotion_cadence_repeats(self, tmp_path):
        store = SnapshotStore(tmp_path / "s", checkpoint_every=2)
        infos = _grow(store, self._versions(7))
        promoted = [info.version for info in infos if info.checkpoint]
        assert promoted == [3, 5, 7]

    def test_cadence_persists_in_manifest(self, tmp_path):
        first = SnapshotStore(tmp_path / "s", checkpoint_every=2)
        versions = self._versions(3)
        first.save(versions[0])
        # A handle reopened without the knob inherits the manifest's
        # cadence and keeps promoting.
        reopened = SnapshotStore(tmp_path / "s")
        assert reopened.checkpoint_every == 2
        infos = [reopened.save(dataset) for dataset in versions[1:]]
        assert infos[-1].checkpoint is not None

    def test_bad_cadence_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="checkpoint_every"):
            SnapshotStore(tmp_path / "s", checkpoint_every=0)

    def test_load_replays_from_checkpoint(self, tmp_path):
        store = SnapshotStore(tmp_path / "s", checkpoint_every=2)
        versions = self._versions(6)
        _grow(store, versions)
        # Deleting v1's full document severs full replay but not the
        # checkpointed path — proof load() starts at the checkpoint.
        os.remove(tmp_path / "s" / "v0001.full.json")
        dataset = store.load(6)
        assert dataset_to_json(dataset) == dataset_to_json(versions[-1])
        with pytest.raises(SnapshotCorruption, match="cannot read"):
            store.load(6, use_checkpoints=False)

    def test_checkpointed_replay_matches_full_replay(self, tmp_path):
        store = SnapshotStore(tmp_path / "s", checkpoint_every=2)
        _grow(store, self._versions(6))
        for version in range(1, 7):
            fast = dataset_to_json(store.load(version))
            slow = dataset_to_json(
                store.load(version, use_checkpoints=False)
            )
            assert fast == slow

    def test_read_json_byte_identity_for_checkpoints(self, tmp_path):
        store = SnapshotStore(tmp_path / "s", checkpoint_every=2)
        versions = self._versions(3)
        infos = _grow(store, versions)
        assert infos[2].checkpoint is not None
        # read_json returns the checkpoint file verbatim, and that file
        # is byte-identical to the dataset's canonical document.
        expected = dataset_to_json(versions[2])
        assert store.read_json(3) == expected
        on_disk = (tmp_path / "s" / infos[2].checkpoint).read_text()
        assert on_disk == expected

    def test_corrupted_checkpoint_detected(self, tmp_path):
        store = SnapshotStore(tmp_path / "s", checkpoint_every=2)
        infos = _grow(store, self._versions(3))
        path = tmp_path / "s" / infos[2].checkpoint
        document = json.loads(path.read_text())
        document["records"][0]["domain"] = "tampered.example"
        path.write_text(json.dumps(document, indent=2))
        with pytest.raises(SnapshotCorruption, match="digest"):
            store.load(3)

    def test_checkpoint_ledger_events(self, tmp_path):
        store = SnapshotStore(tmp_path / "s", checkpoint_every=2)
        versions = self._versions(3)
        ledger = _LedgerStub()
        for epoch, dataset in enumerate(versions):
            store.save(dataset, window=(epoch - 1, epoch),
                       runlog=ledger)
        saved = [f for e, f in ledger.events if e == "snapshot.saved"]
        assert [f["checkpoint"] for f in saved] == [False, False, True]
        promoted = [
            f for e, f in ledger.events if e == "snapshot.checkpoint"
        ]
        assert promoted == [{
            "version": 3, "filename": "v0003.ckpt.json",
            "records": 3, "every": 2,
        }]


class TestCorrectnessFixes:
    def test_missing_digest_is_corruption(self, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        store.save(_dataset(_record(1)))
        manifest = tmp_path / "s" / "manifest.json"
        document = json.loads(manifest.read_text())
        document["versions"][0]["digest"] = ""
        manifest.write_text(json.dumps(document))
        with pytest.raises(SnapshotCorruption, match="no.*digest|digest"):
            SnapshotStore(tmp_path / "s").load(1)

    def test_failed_load_rolls_back_into_store(self, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        info = store.save(_dataset(_record(1), _record(2)))
        # Tamper with the stored document so the digest check fails
        # after the target store has been populated.
        path = tmp_path / "s" / info.filename
        document = json.loads(path.read_text())
        document["records"][0]["domain"] = "tampered.example"
        path.write_text(json.dumps(document, indent=2))
        target = SqliteDatasetStore(str(tmp_path / "scratch.sqlite"))
        with pytest.raises(SnapshotCorruption):
            store.load(1, into=target)
        assert len(target) == 0
        assert list(target) == []
        target.close()

    def test_rollback_covers_in_memory_targets_too(self, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        info = store.save(_dataset(_record(1)))
        path = tmp_path / "s" / info.filename
        document = json.loads(path.read_text())
        document["records"][0]["domain"] = "tampered.example"
        path.write_text(json.dumps(document, indent=2))
        target = ASdbDataset()
        with pytest.raises(SnapshotCorruption):
            store.load(1, into=target)
        assert len(target) == 0

    def test_concurrent_writer_detected_not_clobbered(self, tmp_path):
        root = tmp_path / "s"
        first = SnapshotStore(root)
        first.save(_dataset(_record(1)))
        # A second handle opened at v1, racing the first to mint v2.
        second = SnapshotStore(root)
        winner = _dataset(_record(1), _record(2))
        first.save(winner)
        with pytest.raises(SnapshotError, match="reopen"):
            second.save(_dataset(_record(1), _record(3)))
        # The loser changed nothing: the winner's v2 is intact and the
        # loser's handle can be reopened to continue.
        fresh = SnapshotStore(root)
        assert len(fresh) == 2
        assert dataset_to_json(fresh.load(2)) == dataset_to_json(winner)

    def test_set_meta_detects_stale_handle(self, tmp_path):
        root = tmp_path / "s"
        first = SnapshotStore(root)
        second = SnapshotStore(root)
        first.save(_dataset(_record(1)))
        with pytest.raises(SnapshotError, match="reopen"):
            second.set_meta({"n_orgs": 4})

    def test_diff_streams_through_scratch_stores(self, tmp_path,
                                                 monkeypatch):
        import tempfile as _tempfile

        store = SnapshotStore(tmp_path / "s")
        store.save(_dataset(_record(1), _record(2), _record(3)))
        store.save(_dataset(
            _record(1, ("streaming",)), _record(2), _record(4)
        ))
        scratches = []
        real_mkdtemp = _tempfile.mkdtemp

        def spying_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            scratches.append(path)
            return path

        monkeypatch.setattr(
            "repro.core.snapshots.tempfile.mkdtemp", spying_mkdtemp
        )
        diff = store.diff(1, 2)
        assert diff.added == (4,)
        assert diff.removed == (3,)
        assert diff.relabeled == (1,)
        # The streaming path really ran, and cleaned up after itself.
        assert len(scratches) == 1
        assert not os.path.exists(scratches[0])

    def test_materialize_pair_cleans_up_on_error(self, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        store.save(_dataset(_record(1)))
        store.save(_dataset(_record(1), _record(2)))
        with pytest.raises(RuntimeError, match="boom"):
            with store.materialize_pair(1, 2) as (old_ds, new_ds):
                scratch = os.path.dirname(old_ds.path)
                assert len(old_ds) == 1 and len(new_ds) == 2
                raise RuntimeError("boom")
        assert not os.path.exists(scratch)

    def test_pid_suffixed_tmp_files(self, tmp_path):
        # Two processes streaming the same document name must not share
        # a tmp path; the suffix carries the pid.
        store = SnapshotStore(tmp_path / "s")
        store.save(_dataset(_record(1)))
        leftovers = [
            name for name in os.listdir(tmp_path / "s")
            if ".tmp" in name
        ]
        assert leftovers == []


class TestReleaseHistory:
    def _store(self, tmp_path, checkpoint_every=None):
        store = SnapshotStore(tmp_path / "s",
                              checkpoint_every=checkpoint_every)
        _grow(store, [
            _dataset(_record(1), _record(2), _record(3, ("streaming",))),
            _dataset(_record(1, ("streaming",)), _record(2),
                     _record(4, ("banks",))),
            _dataset(_record(1, ("streaming",)), _record(2),
                     _record(3, ("hosting",)), _record(4, ("banks",))),
        ])
        return store

    def test_version_on_day(self, tmp_path):
        history = ReleaseHistory(self._store(tmp_path))
        # Windows: v1 (-1, 0], v2 (0, 90], v3 (90, 180].
        assert history.version_on(0).version == 1
        assert history.version_on(89).version == 1
        assert history.version_on(90).version == 2
        assert history.version_on(500).version == 3
        with pytest.raises(SnapshotError, match="no release"):
            history.version_on(-1)

    def test_asof_by_version_and_day(self, tmp_path):
        store = self._store(tmp_path)
        history = ReleaseHistory(store)
        dataset, info = history.asof(day=100)
        assert info.version == 2
        assert dataset_to_json(dataset) == store.read_json(2)
        dataset, info = history.asof(version=3)
        assert info.version == 3
        assert {record.asn for record in dataset} == {1, 2, 3, 4}

    def test_asof_needs_exactly_one_selector(self, tmp_path):
        history = ReleaseHistory(self._store(tmp_path))
        with pytest.raises(SnapshotError, match="exactly one"):
            history.asof()
        with pytest.raises(SnapshotError, match="exactly one"):
            history.asof(version=1, day=5)

    def test_asof_into_store_backend(self, tmp_path):
        store = self._store(tmp_path)
        target = SqliteDatasetStore(str(tmp_path / "asof.sqlite"))
        dataset, info = ReleaseHistory(store).asof(day=400, into=target)
        assert dataset is target
        assert dataset_to_json(target) == store.read_json(info.version)
        target.close()

    def test_timeline_remove_then_readd(self, tmp_path):
        history = ReleaseHistory(self._store(tmp_path))
        events = history.timeline(3)
        assert [e.change for e in events] == \
            ["added", "removed", "added"]
        assert [e.version for e in events] == [1, 2, 3]
        assert events[1].item is None
        assert categorization(events[0].item) == "media"
        assert categorization(events[2].item) == "computer_and_it"
        # The re-add carries the release's sweep window.
        assert events[2].through_day == 180

    def test_timeline_update_flags(self, tmp_path):
        history = ReleaseHistory(self._store(tmp_path))
        events = history.timeline(1)
        assert [e.change for e in events] == ["added", "updated"]
        assert events[1].labels_changed is True
        steady = history.timeline(2)
        assert [e.change for e in steady] == ["added"]

    def test_timeline_unknown_asn_is_empty(self, tmp_path):
        history = ReleaseHistory(self._store(tmp_path))
        assert history.timeline(999) == ()

    def test_timeline_scans_checkpointed_chains(self, tmp_path):
        # Same store, checkpointing every delta: the scan must read the
        # deltas (not the checkpoints) and produce identical events.
        plain = ReleaseHistory(self._store(tmp_path / "plain"))
        ckpt = ReleaseHistory(
            self._store(tmp_path / "ckpt", checkpoint_every=1)
        )
        assert ckpt.store.info(2).checkpoint is not None
        for asn in (1, 2, 3, 4):
            assert ckpt.timeline(asn) == plain.timeline(asn)

    def test_timelines_matches_per_asn_timeline(self, tmp_path):
        history = ReleaseHistory(self._store(tmp_path))
        bulk = history.timelines()
        assert set(bulk) == {1, 2, 3, 4}
        for asn, events in bulk.items():
            assert events == history.timeline(asn)

    def test_full_save_pins_state(self, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        store.save(_dataset(_record(1), _record(2)), window=(-1, 0))
        # An explicit full save that dropped AS2 entirely.
        store.save(_dataset(_record(1)), window=(0, 90), full=True)
        history = ReleaseHistory(store)
        assert [e.change for e in history.timeline(2)] == \
            ["added", "removed"]
        bulk = history.timelines()
        assert bulk[2] == history.timeline(2)

    def test_churn_flows(self, tmp_path):
        history = ReleaseHistory(self._store(tmp_path))
        report = history.churn(1, 2)
        assert report.added == 1        # AS4 appeared
        assert report.removed == 1      # AS3 disappeared
        assert report.relabeled == 1    # AS1 computer_and_it -> media
        assert report.unchanged == 1    # AS2 held
        assert report.changed == 3
        assert (report.old_records, report.new_records) == (3, 3)
        assert report.flows == (
            (ABSENT, "finance", 1),
            ("computer_and_it", "media", 1),
            ("media", ABSENT, 1),
        )

    def test_churn_roundtrip_dict(self, tmp_path):
        report = ReleaseHistory(self._store(tmp_path)).churn(1, 3)
        document = report.to_dict()
        assert document["old_version"] == 1
        assert document["new_version"] == 3
        assert sum(flow["count"] for flow in document["flows"]) >= 1

    def test_churn_stage_only_changes_are_unchanged(self, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        store.save(_dataset(_record(5, stage=Stage.ONE_SOURCE)))
        store.save(_dataset(_record(5, stage=Stage.MULTI_AGREE)))
        report = ReleaseHistory(store).churn(1, 2)
        assert report.unchanged == 1 and report.relabeled == 0
        assert report.flows == ()

    def test_categorization_states(self):
        assert categorization(None) == ABSENT
        assert categorization({"asn": 1, "labels": []}) == UNCLASSIFIED
        item = {"labels": [
            {"layer1": "media", "layer2": "streaming"},
            {"layer1": "finance", "layer2": "banks"},
        ]}
        assert categorization(item) == "finance+media"
