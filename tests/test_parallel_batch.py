"""The batch classification engine: determinism, bulk endpoints, cache.

The tentpole guarantee under test: ``classify_batch(workers=N)`` is
byte-identical to the sequential ascending-ASN ``classify_all`` pass —
same labels, stages, domains, sources, and cache keys per record, same
CSV serialization — on worlds with heavy organization-sibling overlap
(where the cluster planner and the shared cache actually matter).
"""

import threading

import pytest

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core import OrganizationCache, plan_clusters
from repro.core.cache import org_cache_key
from repro.datasources.base import Query
from repro.system import build_sources
from repro.web.translate import translate_many, translate_to_english


def _sibling_world(seed, n_orgs=70):
    """A world where most organizations own several ASes."""
    return generate_world(
        WorldConfig(n_orgs=n_orgs, seed=seed, multi_as_probability=0.6)
    )


def _assert_records_identical(sequential, batched):
    assert len(sequential) == len(batched)
    for record in sequential:
        twin = batched.get(record.asn)
        assert twin.labels == record.labels, record.asn
        assert twin.stage is record.stage, record.asn
        assert twin.domain == record.domain, record.asn
        assert twin.sources == record.sources, record.asn
        assert twin.org_key == record.org_key, record.asn
        assert twin.cache_keys == record.cache_keys, record.asn
    assert batched.to_csv() == sequential.to_csv()


class TestBatchIdentity:
    @pytest.mark.parametrize("seed", [5, 21, 47])
    def test_workers_4_identical_to_sequential(self, seed):
        world = _sibling_world(seed)
        sequential = build_asdb(
            world, SystemConfig(seed=seed, train_ml=False)
        ).asdb.classify_all()
        batched = build_asdb(
            world, SystemConfig(seed=seed, train_ml=False)
        ).asdb.classify_batch(workers=4)
        _assert_records_identical(sequential, batched)

    def test_with_ml_identical_to_sequential(self):
        world = _sibling_world(5, n_orgs=60)
        sequential = build_asdb(
            world, SystemConfig(seed=7)
        ).asdb.classify_all()
        batched = build_asdb(
            world, SystemConfig(seed=7)
        ).asdb.classify_batch(workers=4)
        _assert_records_identical(sequential, batched)

    def test_workers_1_identical_to_sequential(self):
        world = _sibling_world(9)
        sequential = build_asdb(
            world, SystemConfig(seed=3, train_ml=False)
        ).asdb.classify_all()
        batched = build_asdb(
            world, SystemConfig(seed=3, train_ml=False)
        ).asdb.classify_batch(workers=1)
        _assert_records_identical(sequential, batched)

    def test_cache_disabled_identical_to_sequential(self):
        world = _sibling_world(13)
        config = SystemConfig(seed=3, train_ml=False, use_cache=False)
        sequential = build_asdb(world, config).asdb.classify_all()
        batched = build_asdb(world, config).asdb.classify_batch(workers=4)
        _assert_records_identical(sequential, batched)

    def test_classify_all_workers_dispatches_to_batch(self):
        world = _sibling_world(9)
        sequential = build_asdb(
            world, SystemConfig(seed=3, train_ml=False)
        ).asdb.classify_all()
        via_config = build_asdb(
            world, SystemConfig(seed=3, train_ml=False, workers=4)
        ).asdb.classify_all()
        _assert_records_identical(sequential, via_config)

    def test_batch_subset_of_asns(self):
        world = _sibling_world(5)
        asns = world.asns()[: len(world.asns()) // 2]
        asdb = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).asdb
        reference = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).asdb
        for asn in asns:
            reference.classify(asn)
        batched = asdb.classify_batch(asns=asns, workers=4)
        _assert_records_identical(reference.dataset, batched)


class TestClusterPlanning:
    def test_partition_covers_every_asn_once(self):
        world = _sibling_world(5)
        clusters = plan_clusters(world.registry)
        seen = [asn for cluster in clusters for asn in cluster.members]
        assert sorted(seen) == world.asns()
        assert len(seen) == len(set(seen))

    def test_members_ascending_and_leader_lowest(self):
        world = _sibling_world(5)
        for cluster in plan_clusters(world.registry):
            assert list(cluster.members) == sorted(cluster.members)
            assert cluster.leader == cluster.members[0]

    def test_keys_are_the_pre_domain_cache_keys(self):
        world = _sibling_world(5)
        for cluster in plan_clusters(world.registry):
            for asn in cluster.members:
                key = org_cache_key(world.registry.contact(asn), domain=None)
                assert key == cluster.key

    def test_siblings_actually_cluster(self):
        world = _sibling_world(5)
        clusters = plan_clusters(world.registry)
        assert any(len(cluster.members) > 1 for cluster in clusters)

    def test_no_grouping_yields_singletons(self):
        world = _sibling_world(5)
        clusters = plan_clusters(world.registry, group_siblings=False)
        assert all(len(cluster.members) == 1 for cluster in clusters)
        assert len(clusters) == len(world.asns())


class TestBulkEndpoints:
    def _queries(self, world):
        queries = []
        for asn in world.asns():
            contact = world.registry.contact(asn)
            org = world.org_of_asn(asn)
            queries.append(
                Query(
                    name=contact.name,
                    domain=org.domain,
                    address=contact.address,
                    phone=contact.phone,
                    asn=asn,
                )
            )
            # Domainless variant exercises the name-keyed paths.
            queries.append(Query(name=contact.name, asn=asn))
        return queries

    def test_lookup_many_elementwise_identical_for_every_source(self):
        world = _sibling_world(5)
        queries = self._queries(world)
        for source in build_sources(world, seed=5):
            assert source.lookup_many(queries) == [
                source.lookup(query) for query in queries
            ], source.name

    def test_ml_classify_domains_identical_to_scalar(self):
        world = _sibling_world(5, n_orgs=60)
        built = build_asdb(world, SystemConfig(seed=7))
        pipeline = built.ml_pipeline
        domains = sorted(world.web.domains())[:60] + ["nonexistent.invalid"]
        batch = pipeline.classify_domains(domains)
        scalar = [pipeline.classify_domain(domain) for domain in domains]
        assert batch == scalar  # includes exact float scores

    def test_scrape_many_identical_to_scalar(self):
        from repro.web.scraper import Scraper

        world = _sibling_world(5, n_orgs=60)
        scraper = Scraper(world.web)
        domains = sorted(world.web.domains())[:80] + ["nonexistent.invalid"]
        assert scraper.scrape_many(domains) == [
            scraper.scrape(domain) for domain in domains
        ]

    def test_translate_many_identical_to_scalar(self):
        world = _sibling_world(5, n_orgs=60)
        texts = []
        for domain in sorted(world.web.domains())[:80]:
            site = world.web.fetch(domain)
            if site is not None and site.homepage.scrapable_text:
                texts.append(site.homepage.scrapable_text)
        assert texts
        assert translate_many(texts) == [
            translate_to_english(text) for text in texts
        ]

    def test_match_sources_many_identical_to_scalar(self):
        world = _sibling_world(5)
        resolver = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).resolver
        items = []
        for asn in world.asns()[:60]:
            contact = world.registry.contact(asn)
            items.append((contact, world.org_of_asn(asn).domain))
            items.append((contact, None))
        assert resolver.match_sources_many(items) == [
            resolver.match_sources(contact, domain)
            for contact, domain in items
        ]


class TestThreadSafeCache:
    def test_concurrent_hammer_keeps_counters_consistent(self):
        cache = OrganizationCache()
        operations_per_thread = 400
        n_threads = 8

        def hammer(thread_id):
            for index in range(operations_per_thread):
                key = f"name:org{(thread_id + index) % 10}"
                cache.get(key)
                cache.put(key, ("record", thread_id, index))
                cache.get(None)
                if index % 7 == 0:
                    cache.invalidate(key)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        total_keyed = n_threads * operations_per_thread
        assert stats.hits + stats.misses == total_keyed
        assert stats.none_keys == total_keyed
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_stats_snapshot_is_consistent(self):
        cache = OrganizationCache()
        cache.get("name:a")
        cache.put("name:a", "record")
        cache.get("name:a")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_invalidate_record_drops_every_alias(self):
        cache = OrganizationCache()
        record = object()
        cache.put("name:a", record)
        cache.put("domain:a.com", record)
        cache.put("name:other", "unrelated")
        cache.invalidate_record(record)
        assert cache.get("name:a") is None
        assert cache.get("domain:a.com") is None
        assert cache.get("name:other") == "unrelated"


class TestReclassify:
    def test_superseded_record_is_replaced_not_duplicated(self):
        world = _sibling_world(5)
        asdb = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).asdb
        asdb.classify_all()
        size = len(asdb.dataset)
        asn = world.asns()[0]
        old = asdb.dataset.get(asn)
        new = asdb.reclassify(asn)
        assert len(asdb.dataset) == size
        assert asdb.dataset.get(asn) is new
        assert asdb.dataset.get(asn) is not old

    def test_reclassify_purges_stale_cache_aliases(self):
        world = _sibling_world(5)
        asdb = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).asdb
        asdb.classify_all()
        asn = next(
            record.asn for record in asdb.dataset if record.cache_keys
        )
        old = asdb.dataset.get(asn)
        # A community-correction style alias beyond the record's own keys.
        asdb.cache.put("name:stale alias", old)
        asdb.reclassify(asn)
        assert all(
            value is not old for value in asdb.cache._store.values()
        )


class TestProcessExecutor:
    """``executor="process"`` must be output-equivalent to both the
    sequential pass and the thread batch engine — the process pool only
    relocates ML scoring, never changes it."""

    def test_process_batch_identical_to_sequential_with_ml(self):
        world = _sibling_world(5, n_orgs=60)
        sequential = build_asdb(
            world, SystemConfig(seed=7)
        ).asdb.classify_all()
        processed = build_asdb(
            world, SystemConfig(seed=7, executor="process")
        ).asdb.classify_batch(workers=2)
        _assert_records_identical(sequential, processed)

    def test_process_batch_identical_without_ml(self):
        world = _sibling_world(9)
        sequential = build_asdb(
            world, SystemConfig(seed=3, train_ml=False)
        ).asdb.classify_all()
        processed = build_asdb(
            world,
            SystemConfig(seed=3, train_ml=False, executor="process"),
        ).asdb.classify_batch(workers=4)
        _assert_records_identical(sequential, processed)

    def test_process_executor_fault_injection_smoke(self):
        from repro.core.resilience import RetryPolicy
        from repro.datasources.faults import FaultPlan

        world = _sibling_world(7, n_orgs=40)
        plan = FaultPlan.uniform(0.3, seed=7)
        # Breaker off: shedding depends on call order, which batching
        # legitimately changes; pure retry does not.
        policy = RetryPolicy(seed=7, backoff_base=0.0, breaker_enabled=False)

        def run(executor):
            built = build_asdb(
                world,
                SystemConfig(
                    seed=7, workers=4, executor=executor,
                    faults=plan, retry=policy,
                ),
            )
            return list(built.asdb.classify_all())

        threaded = run("thread")
        processed = run("process")
        assert any(record.degraded_sources for record in threaded)
        for record, twin in zip(threaded, processed):
            assert twin.asn == record.asn
            assert twin.labels == record.labels, record.asn
            assert twin.stage is record.stage, record.asn
            assert twin.domain == record.domain, record.asn
            assert twin.sources == record.sources, record.asn
            assert twin.degraded_sources == record.degraded_sources, (
                record.asn
            )


class TestCliWorkers:
    def test_classify_workers_output_identical(self, tmp_path, capsys):
        from repro.cli import main

        out_seq = tmp_path / "seq.csv"
        out_par = tmp_path / "par.csv"
        base = ["classify", "--n-orgs", "40", "--seed", "3", "--no-ml"]
        assert main(base + ["--out", str(out_seq)]) == 0
        assert main(
            base + ["--workers", "4", "--out", str(out_par)]
        ) == 0
        capsys.readouterr()
        assert out_par.read_bytes() == out_seq.read_bytes()


class TestBatchMetrics:
    def test_batch_gauges_and_histograms_emitted(self):
        from repro.obs import MetricsRegistry

        world = _sibling_world(5)
        registry = MetricsRegistry()
        asdb = build_asdb(
            world,
            SystemConfig(seed=5, train_ml=False, metrics=registry),
        ).asdb
        asdb.classify_batch(workers=4)
        snapshot = {metric.name for metric in registry}
        for name in (
            "asdb_batch_workers",
            "asdb_batch_asns",
            "asdb_batch_clusters",
            "asdb_batch_cluster_size",
            "asdb_batch_seconds",
        ):
            assert name in snapshot
        workers = registry.gauge("asdb_batch_workers", "")
        assert workers.value() == 4
        asns = registry.gauge("asdb_batch_asns", "")
        assert asns.value() == len(world.asns())
