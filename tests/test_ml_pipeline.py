"""Integration tests for the Figure-3 web classification pipeline."""

import random

import pytest

from repro.datasources import DunBradstreet
from repro.ml import (
    TrainingExample,
    WebClassificationPipeline,
    build_training_examples,
    confusion_matrix,
    roc_auc,
)
from repro.web import Scraper


@pytest.fixture(scope="module")
def trained(medium_world):
    world = medium_world
    dnb = DunBradstreet(world)
    rng = random.Random(99)
    asns = world.asns()
    rng.shuffle(asns)
    test_asns = asns[:150]
    examples = build_training_examples(
        world, dnb, rng, exclude_asns=test_asns
    )
    pipeline = WebClassificationPipeline(Scraper(world.web), seed=5)
    pipeline.fit(examples)
    return world, pipeline, test_asns, examples


class TestTrainingSet:
    def test_size_near_225(self, trained):
        _, _, _, examples = trained
        # 150 random + 75 D&B-hosting; a few drop for missing domains.
        assert 150 <= len(examples) <= 225

    def test_hosting_oversampled(self, trained):
        world, _, test_asns, examples = trained
        train_rate = sum(e.is_hosting for e in examples) / len(examples)
        world_rate = sum(
            1 for org in world.iter_organizations()
            if "hosting" in org.truth.layer2_slugs()
        ) / len(world.organizations)
        assert train_rate > world_rate

    def test_no_test_leakage(self, trained):
        world, _, test_asns, examples = trained
        test_domains = {
            world.org_of_asn(asn).domain for asn in test_asns
        }
        train_domains = {e.domain for e in examples}
        assert not (train_domains & test_domains)


class TestPipelineBehavior:
    def test_fit_flag(self, trained):
        _, pipeline, _, _ = trained
        assert pipeline.fitted

    def test_unscrapable_domain_verdict(self, trained):
        _, pipeline, _, _ = trained
        verdict = pipeline.classify_domain("no.such.domain.example")
        assert not verdict.scraped
        assert not verdict.is_isp and not verdict.is_hosting

    def test_classify_before_fit_raises(self, medium_world):
        pipeline = WebClassificationPipeline(Scraper(medium_world.web))
        with pytest.raises(RuntimeError):
            pipeline.classify_text("x.example", "some text")

    def test_fit_with_no_scrapable_examples_raises(self, medium_world):
        pipeline = WebClassificationPipeline(Scraper(medium_world.web))
        with pytest.raises(ValueError):
            pipeline.fit(
                [TrainingExample("no.such.example", False, False)]
            )

    def test_verdict_deterministic(self, trained):
        world, pipeline, test_asns, _ = trained
        org = world.org_of_asn(test_asns[0])
        if org.domain is None:
            pytest.skip("sampled org has no domain")
        a = pipeline.classify_domain(org.domain)
        b = pipeline.classify_domain(org.domain)
        assert a == b


class TestPipelineAccuracy:
    """Table-6-shaped checks with wide statistical bands."""

    def _evaluate(self, trained, slug):
        world, pipeline, test_asns, _ = trained
        truth, predicted, scores = [], [], []
        for asn in test_asns:
            org = world.org_of_asn(asn)
            if org.domain is None:
                continue
            verdict = pipeline.classify_domain(org.domain)
            truth.append(slug in org.truth.layer2_slugs())
            if slug == "isp":
                predicted.append(verdict.is_isp)
                scores.append(verdict.isp_score)
            else:
                predicted.append(verdict.is_hosting)
                scores.append(verdict.hosting_score)
        return truth, predicted, scores

    def test_isp_accuracy_high(self, trained):
        truth, predicted, scores = self._evaluate(trained, "isp")
        cm = confusion_matrix(truth, predicted)
        assert cm.accuracy >= 0.80            # paper: 94%
        assert cm.false_positive_rate <= 0.08  # paper: 1%
        assert roc_auc(truth, scores) >= 0.85  # paper: .94

    def test_hosting_low_false_positives(self, trained):
        truth, predicted, scores = self._evaluate(trained, "hosting")
        cm = confusion_matrix(truth, predicted)
        assert cm.false_positive_rate <= 0.08  # paper: 3%
        assert cm.accuracy >= 0.80             # paper: 90%

    def test_hosting_harder_than_isp(self, trained):
        # Table 6 / Section 4.1: the hosting classifier is the weaker one
        # (AUC .80 vs .94).
        isp_truth, _, isp_scores = self._evaluate(trained, "isp")
        host_truth, _, host_scores = self._evaluate(trained, "hosting")
        assert roc_auc(host_truth, host_scores) <= roc_auc(
            isp_truth, isp_scores
        ) + 0.02

    def test_false_negatives_exceed_false_positives(self, trained):
        # Section 4.1: "more likely to produce false negatives than false
        # positives".
        for slug in ("isp", "hosting"):
            truth, predicted, _ = self._evaluate(trained, slug)
            cm = confusion_matrix(truth, predicted)
            # Directional claim with N~150: allow small-sample slack.
            assert cm.fn + 3 >= cm.fp
