"""Round-trip tests: render -> parse for every RIR dialect."""

import pytest
from hypothesis import given, strategies as st

from repro.whois import RIR, WhoisFacts, parse, render

FULL_FACTS = WhoisFacts(
    asn=64500,
    as_name="EXAMPLENET-AS",
    org_name="Example Networks LLC",
    description="Example Networks backbone",
    address_lines=("1 Main Street, Springfield",),
    city="Springfield",
    country="US",
    phone="+1-555-0100",
    emails=("abuse@example.net", "noc@example.net"),
    remark_urls=("http://www.example.net",),
)


@pytest.mark.parametrize("rir", list(RIR))
def test_roundtrip_asn_and_name(rir):
    parsed = parse(render(FULL_FACTS, rir))
    assert parsed.asn == 64500
    assert parsed.rir is rir
    # Some form of name always survives (Section 3.1: 100%).
    assert parsed.has_some_name


@pytest.mark.parametrize("rir", [RIR.RIPE, RIR.APNIC, RIR.AFRINIC, RIR.ARIN])
def test_roundtrip_org_name(rir):
    parsed = parse(render(FULL_FACTS, rir))
    assert parsed.org_name == "Example Networks LLC"


def test_lacnic_owner_becomes_org_name():
    parsed = parse(render(FULL_FACTS, RIR.LACNIC))
    assert parsed.org_name == "Example Networks LLC"


@pytest.mark.parametrize("rir", [RIR.RIPE, RIR.APNIC, RIR.AFRINIC, RIR.ARIN])
def test_roundtrip_emails(rir):
    parsed = parse(render(FULL_FACTS, rir))
    assert "abuse@example.net" in parsed.emails


def test_lacnic_has_no_emails():
    parsed = parse(render(FULL_FACTS, RIR.LACNIC))
    assert parsed.emails == ()


def test_lacnic_has_city_and_country_only():
    parsed = parse(render(FULL_FACTS, RIR.LACNIC))
    assert parsed.city == "Springfield"
    assert parsed.country == "US"
    assert parsed.address_lines == ()


@pytest.mark.parametrize("rir", [RIR.ARIN, RIR.APNIC])
def test_phone_present_for_arin_apnic(rir):
    parsed = parse(render(FULL_FACTS, rir))
    assert parsed.phone == "+1-555-0100"


@pytest.mark.parametrize("rir", [RIR.RIPE, RIR.AFRINIC, RIR.LACNIC])
def test_phone_absent_elsewhere(rir):
    # Appendix A: only APNIC and ARIN provide phone numbers.
    parsed = parse(render(FULL_FACTS, rir))
    assert parsed.phone is None


def test_ripe_has_no_address_field():
    parsed = parse(render(FULL_FACTS, RIR.RIPE))
    assert parsed.address_lines == ()
    assert parsed.description is not None


def test_apnic_has_address():
    parsed = parse(render(FULL_FACTS, RIR.APNIC))
    assert any("Main Street" in line for line in parsed.address_lines)


def test_afrinic_obfuscation():
    facts = WhoisFacts(
        asn=37100,
        as_name="AFNET-AS",
        org_name="African Networks Ltd",
        address_lines=("22 Harbor Road, Lagos",),
        city="Lagos",
        country="NG",
        emails=("abuse@afnet.example",),
        obfuscate_address=True,
    )
    parsed = parse(render(facts, RIR.AFRINIC))
    joined = " ".join(parsed.address_lines)
    assert "Harbor Road" not in joined
    assert "*" in joined


def test_remark_urls_survive():
    parsed = parse(render(FULL_FACTS, RIR.RIPE))
    assert any("example.net" in remark for remark in parsed.remarks)


def test_minimal_facts_parse_cleanly():
    facts = WhoisFacts(asn=65001, as_name="BARE-AS")
    for rir in RIR:
        parsed = parse(render(facts, rir))
        assert parsed.asn == 65001
        assert parsed.has_some_name


_name_strategy = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" -."
    ),
    min_size=1,
    max_size=40,
).map(lambda s: s.strip()).filter(bool)


@given(
    asn=st.integers(min_value=1, max_value=4_000_000_000),
    as_name=_name_strategy,
    org_name=st.one_of(st.none(), _name_strategy),
    rir=st.sampled_from(list(RIR)),
)
def test_parse_never_crashes(asn, as_name, org_name, rir):
    facts = WhoisFacts(asn=asn, as_name=as_name, org_name=org_name)
    parsed = parse(render(facts, rir))
    assert parsed.asn == asn
