"""Tests for the fault-injection + retry/breaker resilience layer.

Covers the tentpole (deterministic faults, retry/backoff, circuit
breaker, graceful degradation with scalar/batch parity) and the
error-path satellite bugfixes (generator cleanup + error traces,
``dump --parse`` on a missing file, ``lookup_by_org`` on a
non-indexable source).
"""

import pytest

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.cli import main
from repro.core.pipeline import REQUEST_ASN_MATCH
from repro.core.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResilientSource,
    RetryPolicy,
)
from repro.datasources.base import DataSource, Query, SourceEntry, SourceMatch
from repro.datasources.faults import (
    FaultPlan,
    FaultSpec,
    FaultySource,
    RateLimited,
    SourceOutage,
    is_malformed_match,
)
from repro.evaluation import (
    build_gold_standard,
    evaluate_source,
    pairwise_precision_rows,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBuilder
from repro.taxonomy import LabelSet


class _StaticSource(DataSource):
    """A source that always matches the same healthy entry."""

    name = "static"

    def __init__(self):
        self.calls = 0
        self.entry = SourceEntry(
            entity_id="E1",
            org_id="org-1",
            name="Acme Networks",
            domain="acme.net",
            native_categories=("ISP",),
            labels=LabelSet.from_layer2_slugs(["isp"]),
        )

    def lookup(self, query):
        self.calls += 1
        return SourceMatch(source=self.name, entry=self.entry, via="name")


class _NotIndexableSource(_StaticSource):
    """Keeps the base-class lookup_by_org (website-classifier shape)."""

    name = "webclass"


def _tiny_world(seed=7, n_orgs=40):
    return generate_world(WorldConfig(n_orgs=n_orgs, seed=seed))


def _query(tag="q"):
    return Query(name=f"{tag} networks", domain=f"{tag}.net")


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan.uniform(0.4, seed=11)
        query = _query()
        first = plan.decide("dnb", query, attempt=0)
        again = plan.decide("dnb", query, attempt=0)
        assert first == again

    def test_decisions_vary_by_attempt_and_source(self):
        plan = FaultPlan.uniform(0.5, seed=11)
        decisions = {
            (source, attempt): plan.decide(source, _query(), attempt)
            for source in ("dnb", "crunchbase", "zvelo")
            for attempt in range(6)
        }
        assert len(set(decisions.values())) > 1

    def test_down_plan_is_a_permanent_outage(self):
        plan = FaultPlan.down("dnb", seed=3)
        for attempt in range(10):
            assert plan.decide("dnb", _query(), attempt).outage
        assert not plan.decide("crunchbase", _query(), 0).raises

    def test_quiet_spec_never_fires(self):
        plan = FaultPlan(seed=5)
        decision = plan.decide("dnb", _query(), 0)
        assert not decision.raises
        assert not decision.malformed
        assert decision.latency_seconds == 0.0


class TestFaultySource:
    def test_outage_and_rate_limit_raise(self):
        source = _StaticSource()
        down = FaultySource(source, FaultPlan.down("static", seed=1))
        with pytest.raises(SourceOutage):
            down.lookup(_query())
        assert source.calls == 0  # never reached the real source

        limited = FaultySource(
            _StaticSource(),
            FaultPlan(seed=1, default=FaultSpec(rate_limit_rate=1.0)),
        )
        with pytest.raises(RateLimited):
            limited.lookup(_query())

    def test_malformed_entries_are_detectable(self):
        faulty = FaultySource(
            _StaticSource(),
            FaultPlan(seed=2, default=FaultSpec(malformed_rate=1.0)),
        )
        match = faulty.lookup(_query())
        assert match is not None
        assert is_malformed_match(match)
        assert not is_malformed_match(_StaticSource().lookup(_query()))
        assert not is_malformed_match(None)

    def test_scalar_and_bulk_draw_identical_faults(self):
        plan = FaultPlan.uniform(0.5, seed=9)
        queries = [_query(f"org{i}") for i in range(20)]

        def outcome(source, call):
            try:
                return ("ok", call())
            except (SourceOutage, RateLimited) as exc:
                return ("fault", type(exc).__name__)

        scalar = FaultySource(_StaticSource(), plan)
        per_query = [
            outcome(scalar, lambda q=q: scalar.lookup(q)) for q in queries
        ]
        bulk = FaultySource(_StaticSource(), plan)
        for index, query in enumerate(queries):
            got = outcome(bulk, lambda: bulk.lookup_many([query])[0])
            assert got == per_query[index]

    def test_lookup_by_org_is_fault_free(self, small_world):
        from repro.system import build_sources

        dnb = build_sources(small_world, seed=0)[0]
        down = FaultySource(dnb, FaultPlan.down("dnb", seed=0))
        org = small_world.org_of_asn(small_world.asns()[0])
        assert down.lookup_by_org(org.org_id) == dnb.lookup_by_org(
            org.org_id
        )


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_probes=2)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_probes=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_probes=2)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()  # rejection 1
        assert breaker.allow()      # rejection 2 -> half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_probes=1)
        breaker.record_failure()
        assert breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.transitions == (
            BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_OPEN
        )

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestResilientSource:
    def test_transient_fault_clears_on_retry(self):
        # Find a query whose attempt 0 faults but attempt 1 succeeds
        # cleanly: retries re-roll the fault dice deterministically.
        plan = FaultPlan(seed=13, default=FaultSpec(outage_rate=0.5))
        query = next(
            q for q in (_query(f"t{i}") for i in range(200))
            if plan.decide("static", q, 0).outage
            and not plan.decide("static", q, 1).outage
        )
        inner = _StaticSource()
        source = ResilientSource(
            FaultySource(inner, plan),
            RetryPolicy(seed=13, max_retries=2, backoff_base=0.0),
        )
        outcome = source.try_lookup(query)
        assert not outcome.failed
        assert outcome.attempts == 2
        assert outcome.match is not None
        assert inner.calls == 1

    def test_permanent_outage_degrades_without_raising(self):
        registry = MetricsRegistry()
        source = ResilientSource(
            FaultySource(_StaticSource(), FaultPlan.down("static", seed=1)),
            RetryPolicy(
                seed=1, max_retries=2, backoff_base=0.0,
                breaker_enabled=False,
            ),
            metrics=registry,
        )
        outcome = source.try_lookup(_query())
        assert outcome.failed
        assert outcome.attempts == 3
        assert "outage" in outcome.error
        assert source.lookup(_query()) is None  # plain contract: no raise
        errors = registry.counter(
            "asdb_source_errors_total", labelnames=("source", "kind")
        )
        assert errors.value(source="static", kind="outage") >= 3
        retries = registry.counter(
            "asdb_retries_total", labelnames=("source",)
        )
        assert retries.value(source="static") >= 2

    def test_malformed_entries_count_as_failures(self):
        source = ResilientSource(
            FaultySource(
                _StaticSource(),
                FaultPlan(seed=2, default=FaultSpec(malformed_rate=1.0)),
            ),
            RetryPolicy(seed=2, max_retries=1, backoff_base=0.0),
        )
        outcome = source.try_lookup(_query())
        assert outcome.failed
        assert "malformed" in outcome.error
        assert outcome.match is None  # garbage never escapes

    def test_injected_latency_over_timeout_fails_without_sleeping(self):
        sleeps = []
        source = ResilientSource(
            FaultySource(
                _StaticSource(),
                FaultPlan(
                    seed=3,
                    default=FaultSpec(
                        latency_rate=1.0, latency_seconds=5.0
                    ),
                ),
            ),
            RetryPolicy(
                seed=3, max_retries=1, backoff_base=0.0,
                timeout_seconds=1.0,
            ),
            sleep=sleeps.append,
        )
        outcome = source.try_lookup(_query())
        assert outcome.failed
        assert "timeout" in outcome.error
        assert sleeps == []  # simulated latency, zero wall time

    def test_breaker_opens_and_sheds_calls(self):
        registry = MetricsRegistry()
        source = ResilientSource(
            FaultySource(_StaticSource(), FaultPlan.down("static", seed=4)),
            RetryPolicy(
                seed=4, max_retries=0, backoff_base=0.0,
                breaker_failure_threshold=2, breaker_recovery_probes=50,
            ),
            metrics=registry,
        )
        source.try_lookup(_query("a"))
        source.try_lookup(_query("b"))
        assert source.breaker.state == BREAKER_OPEN
        shed = source.try_lookup(_query("c"))
        assert shed.failed
        assert shed.error == "breaker_open"
        assert shed.attempts == 0
        gauge = registry.gauge(
            "asdb_breaker_state", labelnames=("source",)
        )
        assert gauge.value(source="static") == 2

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(seed=5, backoff_base=0.01, backoff_cap=0.02)
        first = policy.backoff_seconds("dnb", "key", 0)
        assert first == policy.backoff_seconds("dnb", "key", 0)
        assert first != policy.backoff_seconds("dnb", "key", 1)
        assert 0.0 < first <= 0.02
        assert policy.backoff_seconds("dnb", "key", 9) <= 0.02
        quiet = RetryPolicy(seed=5, backoff_base=0.0)
        assert quiet.backoff_seconds("dnb", "key", 3) == 0.0

    def test_untouched_contract_delegates(self):
        inner = _StaticSource()
        source = ResilientSource(inner, RetryPolicy(backoff_base=0.0))
        assert source.name == "static"
        assert source.coverage_count() == inner.coverage_count()
        assert source.inner is inner
        many = source.lookup_many([_query("a"), _query("b")])
        assert len(many) == 2 and all(m is not None for m in many)


class TestPipelineParityUnderFaults:
    """Same seed + FaultPlan => scalar and batch runs are identical,
    including the degraded_sources provenance."""

    def _records(self, world, workers, plan, policy):
        built = build_asdb(
            world,
            SystemConfig(
                seed=7, train_ml=False, workers=workers,
                faults=plan, retry=policy,
            ),
        )
        return list(built.asdb.classify_all())

    def _assert_identical(self, scalar, batched):
        assert len(scalar) == len(batched)
        for record, twin in zip(scalar, batched):
            assert twin.asn == record.asn
            assert twin.labels == record.labels, record.asn
            assert twin.stage is record.stage, record.asn
            assert twin.domain == record.domain, record.asn
            assert twin.sources == record.sources, record.asn
            assert twin.degraded_sources == record.degraded_sources, (
                record.asn
            )

    def test_uniform_faults_parity(self):
        world = _tiny_world(seed=7, n_orgs=50)
        plan = FaultPlan.uniform(0.3, seed=7)
        # Breaker off: open/half-open shedding depends on call order,
        # which batching legitimately changes; pure retry does not.
        policy = RetryPolicy(
            seed=7, backoff_base=0.0, breaker_enabled=False
        )
        scalar = self._records(world, 1, plan, policy)
        batched = self._records(world, 4, plan, policy)
        self._assert_identical(scalar, batched)
        assert any(record.degraded_sources for record in scalar)

    def test_permanently_down_source_parity_with_breaker(self):
        # A permanently-down source degrades identically whether the
        # breaker sheds the call or the probe fails, so strict parity
        # holds even with the breaker on.
        world = _tiny_world(seed=11, n_orgs=40)
        plan = FaultPlan.down("crunchbase", seed=11)
        policy = RetryPolicy(seed=11, max_retries=1, backoff_base=0.0)
        scalar = self._records(world, 1, plan, policy)
        batched = self._records(world, 4, plan, policy)
        self._assert_identical(scalar, batched)

    def test_no_faults_means_no_degraded_and_same_output(self):
        world = _tiny_world(seed=5, n_orgs=40)
        plain = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).asdb.classify_all()
        wrapped = build_asdb(
            world,
            SystemConfig(
                seed=5, train_ml=False,
                retry=RetryPolicy(
                    seed=5, backoff_base=0.0, timeout_seconds=None
                ),
            ),
        ).asdb.classify_all()
        assert wrapped.to_csv() == plain.to_csv()
        assert all(not record.degraded_sources for record in wrapped)


class TestGracefulDegradation:
    def test_down_source_still_yields_complete_dataset(self):
        world = _tiny_world(seed=9, n_orgs=40)
        registry = MetricsRegistry()
        built = build_asdb(
            world,
            SystemConfig(
                seed=9, train_ml=False, metrics=registry,
                faults=FaultPlan.down("peeringdb", seed=9),
                retry=RetryPolicy(
                    seed=9, max_retries=1, backoff_base=0.0,
                    breaker_failure_threshold=2,
                ),
            ),
        )
        dataset = built.asdb.classify_all()
        assert len(dataset) == len(world.asns())
        assert all(
            "peeringdb" in record.degraded_sources
            for record in dataset
            if record.stage.value != "cached"
        )
        errors = registry.counter(
            "asdb_source_errors_total", labelnames=("source", "kind")
        )
        assert errors.value(source="peeringdb", kind="outage") > 0
        breaker = registry.gauge(
            "asdb_breaker_state", labelnames=("source",)
        )
        assert breaker.value(source="peeringdb") in (1, 2)
        transitions = registry.counter(
            "asdb_breaker_transitions_total", labelnames=("source", "to")
        )
        assert transitions.value(source="peeringdb", to="open") >= 1

    def test_degraded_sources_survive_json_roundtrip(self):
        from repro.core.persistence import dataset_from_json, dataset_to_json

        world = _tiny_world(seed=9, n_orgs=30)
        built = build_asdb(
            world,
            SystemConfig(
                seed=9, train_ml=False,
                faults=FaultPlan.down("dnb", seed=9),
                retry=RetryPolicy(seed=9, max_retries=0, backoff_base=0.0),
            ),
        )
        dataset = built.asdb.classify_all()
        payload = dataset_to_json(dataset)
        assert '"degraded_sources"' in payload
        restored = dataset_from_json(payload)
        for record in dataset:
            assert (
                restored.get(record.asn).degraded_sources
                == record.degraded_sources
            )

    def test_healthy_json_has_no_degraded_key(self):
        from repro.core.persistence import dataset_to_json

        world = _tiny_world(seed=5, n_orgs=20)
        dataset = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).asdb.classify_all()
        assert '"degraded_sources"' not in dataset_to_json(dataset)


class TestDriverErrorCleanup:
    """Regression: a served call that raises must close the suspended
    stage generator and finish the trace with an error status."""

    def test_scalar_drive_closes_generator_and_fails_trace(self):
        world = _tiny_world(seed=5, n_orgs=20)
        asdb = build_asdb(
            world, SystemConfig(seed=5, train_ml=False)
        ).asdb
        cleaned = []

        def probe(asn, tb):
            try:
                yield (REQUEST_ASN_MATCH, asn)
                pytest.fail("reply should never arrive")
            finally:
                cleaned.append(asn)

        asdb._classify_steps = probe
        asdb._peeringdb.lookup = _raise_runtime_error
        asn = world.asns()[0]
        tb = TraceBuilder(asn)
        with pytest.raises(RuntimeError, match="source exploded"):
            asdb._drive(asn, tb)
        assert cleaned == [asn]
        trace = tb.finish()
        assert trace.error == "RuntimeError: source exploded"
        assert "aborted: RuntimeError" in _narrated(trace)

    def test_batch_failure_marks_every_suspended_leader(self, monkeypatch):
        from repro.core import parallel
        from repro.obs.trace import trace_builder as real_trace_builder

        world = _tiny_world(seed=5, n_orgs=20)
        asdb = build_asdb(
            world, SystemConfig(seed=5, train_ml=False, trace=True)
        ).asdb
        builders = []

        def recording_trace_builder(asn, enabled):
            builder = real_trace_builder(asn, enabled)
            builders.append(builder)
            return builder

        monkeypatch.setattr(
            parallel, "trace_builder", recording_trace_builder
        )
        monkeypatch.setattr(
            asdb._resolver, "match_sources_many", _raise_runtime_error
        )
        with pytest.raises(RuntimeError, match="source exploded"):
            asdb.classify_batch(workers=3)
        assert builders
        failed = [
            builder for builder in builders
            if builder.finish().error is not None
        ]
        assert failed, "no leader trace carries the batch failure"
        assert all(
            "RuntimeError: source exploded" == builder.finish().error
            for builder in failed
        )

    def test_scalar_classify_still_works_after_monkeypatch_style_probe(
        self,
    ):
        # Sanity: the cleanup path does not disturb a healthy pass.
        world = _tiny_world(seed=5, n_orgs=20)
        asdb = build_asdb(
            world, SystemConfig(seed=5, train_ml=False, trace=True)
        ).asdb
        record = asdb.classify(world.asns()[0])
        assert record.trace is not None
        assert record.trace.error is None


def _raise_runtime_error(*args, **kwargs):
    raise RuntimeError("source exploded")


def _narrated(trace):
    from repro.obs import narrate_trace

    return narrate_trace(trace)


class TestLookupByOrgBugfix:
    def test_base_error_names_the_source(self):
        source = _NotIndexableSource()
        with pytest.raises(NotImplementedError, match="'webclass'"):
            source.lookup_by_org("org-1")

    def test_evaluate_source_treats_it_as_no_coverage(self, small_world):
        gold = build_gold_standard(small_world, size=25, seed=0)
        evaluation = evaluate_source(
            _NotIndexableSource(), small_world, gold
        )
        assert evaluation.coverage.value == 0.0

    def test_pairwise_rows_skip_non_indexable_sources(self, small_world):
        from repro.system import build_sources

        dnb = build_sources(small_world, seed=0)[0]
        gold = build_gold_standard(small_world, size=25, seed=0)
        rows = pairwise_precision_rows(
            small_world, gold,
            {"dnb": dnb, "webclass": _NotIndexableSource()},
        )
        assert rows[("webclass",)].total == 0
        assert rows[("dnb", "webclass")].total == 0
        assert rows[("dnb",)].total > 0


class TestCliResilience:
    def test_inject_faults_run_completes(self, capsys):
        code = main([
            "classify", "--n-orgs", "30", "--seed", "5", "--no-ml",
            "--inject-faults", "0.3", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "classified" in out
        assert "fault injection:" in out
        assert "source errors absorbed" in out

    def test_inject_faults_metrics_exported(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.txt"
        code = main([
            "classify", "--n-orgs", "30", "--seed", "5", "--no-ml",
            "--inject-faults", "--retry", "1",
            "--metrics-out", str(metrics_file),
        ])
        assert code == 0
        text = metrics_file.read_text()
        assert "asdb_source_errors_total" in text
        assert "asdb_retries_total" in text
        assert "asdb_breaker_state" in text

    def test_dump_parse_missing_file_exits_2(self, capsys):
        code = main(["dump", "--parse", "/no/such/dump.txt"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "/no/such/dump.txt" in captured.err
