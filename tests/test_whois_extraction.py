"""Tests for Appendix-A field extraction and the WHOIS registry."""

import pytest

from repro.whois import (
    RIR,
    ParsedWhois,
    WhoisFacts,
    WhoisRegistry,
    extract,
    extract_domains,
    parse,
    render,
)
from repro.whois.extraction import domain_of_email


def _parsed(**kwargs):
    defaults = dict(asn=65000, rir=RIR.RIPE, as_name="TEST-AS")
    defaults.update(kwargs)
    return ParsedWhois(**defaults)


class TestNamePreference:
    def test_org_name_preferred(self):
        record = _parsed(
            org_name="Acme Corp", description="acme backbone"
        )
        contact = extract(record)
        assert contact.name == "Acme Corp"
        assert contact.name_source == "org"

    def test_description_second(self):
        record = _parsed(description="Acme backbone\nline two")
        contact = extract(record)
        assert contact.name == "Acme backbone"
        assert contact.name_source == "description"

    def test_as_name_last_resort(self):
        contact = extract(_parsed())
        assert contact.name == "TEST-AS"
        assert contact.name_source == "as-name"


class TestDomainExtraction:
    def test_domain_of_email(self):
        assert domain_of_email("abuse@Example.NET") == "example.net"
        assert domain_of_email("not-an-email") is None

    def test_domains_from_emails(self):
        record = _parsed(emails=("abuse@acme.com", "noc@acme.com"))
        assert extract_domains(record) == ("acme.com",)

    def test_domains_from_remarks_url(self):
        record = _parsed(remarks=("see http://www.acme.org for details",))
        assert "acme.org" in extract_domains(record)

    def test_domains_from_bare_url_in_remarks(self):
        record = _parsed(remarks=("website: acme.co.uk",))
        assert "acme.co.uk" in extract_domains(record)

    def test_remark_version_numbers_not_domains(self):
        record = _parsed(remarks=("policy v1.2 applies",))
        assert extract_domains(record) == ()

    def test_lacnic_yields_no_domains(self):
        record = _parsed(
            rir=RIR.LACNIC, emails=(), remarks=()
        )
        assert extract_domains(record) == ()

    def test_order_preserving_dedup(self):
        record = _parsed(
            emails=("a@one.com", "b@two.com", "c@one.com"),
            remarks=("http://two.com",),
        )
        assert extract_domains(record) == ("one.com", "two.com")


class TestAddressExtraction:
    def test_ripe_uses_description(self):
        record = _parsed(description="1 Square, Paris")
        assert extract(record).address == "1 Square, Paris"

    def test_obfuscated_parts_removed(self):
        record = _parsed(
            rir=RIR.AFRINIC,
            address_lines=("****, Nairobi", "Kenya"),
        )
        contact = extract(record)
        assert "****" not in (contact.address or "")
        assert "Nairobi" in contact.address

    def test_fully_obfuscated_address_is_none(self):
        record = _parsed(rir=RIR.AFRINIC, address_lines=("****", "*****"))
        assert extract(record).address is None


class TestRegistry:
    def _raw(self, asn, name="Org Inc", day=0):
        facts = WhoisFacts(
            asn=asn,
            as_name=f"AS{asn}-NAME",
            org_name=name,
            emails=(f"abuse@org{asn}.net",),
            country="US",
        )
        return render(facts, RIR.ARIN)

    def test_register_and_lookup(self):
        registry = WhoisRegistry()
        registry.register(self._raw(65010))
        assert 65010 in registry
        assert registry.parsed(65010).org_name == "Org Inc"
        assert registry.contact(65010).candidate_domains == ("org65010.net",)

    def test_register_duplicate_raises(self):
        registry = WhoisRegistry()
        registry.register(self._raw(65010))
        with pytest.raises(ValueError):
            registry.register(self._raw(65010))

    def test_update_bumps_version(self):
        registry = WhoisRegistry()
        registry.register(self._raw(65010), day=0)
        registry.update(self._raw(65010, name="New Owner"), day=30)
        entry = registry.entry(65010)
        assert entry.version == 2
        assert entry.registered_day == 0
        assert entry.updated_day == 30
        assert registry.parsed(65010).org_name == "New Owner"

    def test_update_unknown_raises(self):
        registry = WhoisRegistry()
        with pytest.raises(KeyError):
            registry.update(self._raw(65010))

    def test_changed_since(self):
        registry = WhoisRegistry()
        registry.register(self._raw(1), day=0)
        registry.register(self._raw(2), day=10)
        registry.update(self._raw(1, name="X"), day=20)
        assert registry.changed_since(5) == [1, 2]
        assert registry.changed_since(15) == [1]
        assert registry.changed_since(25) == []

    def test_iter_parsed_in_asn_order(self):
        registry = WhoisRegistry()
        for asn in (30, 10, 20):
            registry.register(self._raw(asn))
        assert [p.asn for p in registry.iter_parsed()] == [10, 20, 30]

    def test_field_availability(self):
        registry = WhoisRegistry()
        registry.register(self._raw(1))
        stats = registry.field_availability()
        assert stats["name"] == 1.0
        assert stats["domain"] == 1.0

    def test_field_availability_empty(self):
        assert WhoisRegistry().field_availability() == {}
