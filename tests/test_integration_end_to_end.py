"""End-to-end integration tests: determinism, round-trips, stability."""

import pytest

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core import dataset_from_csv, dataset_from_json, dataset_to_json


def _classify_world(seed_world, seed_system, n_orgs=120, train_ml=False):
    world = generate_world(WorldConfig(n_orgs=n_orgs, seed=seed_world))
    built = build_asdb(
        world, SystemConfig(seed=seed_system, train_ml=train_ml)
    )
    return world, built.asdb.classify_all()


class TestDeterminism:
    def test_identical_runs_identical_datasets(self):
        _, a = _classify_world(11, 2)
        _, b = _classify_world(11, 2)
        assert len(a) == len(b)
        for record in a:
            twin = b.get(record.asn)
            assert twin.labels == record.labels
            assert twin.stage is record.stage
            assert twin.domain == record.domain
            assert twin.sources == record.sources

    def test_with_ml_also_deterministic(self):
        _, a = _classify_world(11, 2, n_orgs=80, train_ml=True)
        _, b = _classify_world(11, 2, n_orgs=80, train_ml=True)
        for record in a:
            assert b.get(record.asn).labels == record.labels

    def test_different_system_seed_changes_sources_not_sanity(self):
        world_a, a = _classify_world(11, 2)
        world_b, b = _classify_world(11, 3)
        # Same world, different source seeds: coverage stays in band.
        assert abs(a.coverage() - b.coverage()) < 0.15


class TestRoundTrips:
    def test_full_dataset_csv_roundtrip(self):
        _, dataset = _classify_world(13, 1)
        restored = dataset_from_csv(dataset.to_csv())
        assert len(restored) == len(dataset)
        for record in dataset:
            assert restored.get(record.asn).labels == record.labels

    def test_full_dataset_json_roundtrip(self):
        _, dataset = _classify_world(13, 1)
        restored = dataset_from_json(dataset_to_json(dataset))
        for record in dataset:
            twin = restored.get(record.asn)
            assert twin.labels == record.labels
            assert twin.stage is record.stage


class TestCrossSeedStability:
    """Headline metrics hold across independent worlds (coarse bands)."""

    @pytest.mark.parametrize("world_seed", [101, 202, 303])
    def test_coverage_and_accuracy_bands(self, world_seed):
        world, dataset = _classify_world(world_seed, 1, n_orgs=250,
                                         train_ml=True)
        assert dataset.coverage() >= 0.80
        hits = total = 0
        for record in dataset:
            if not record.labels:
                continue
            total += 1
            hits += record.labels.overlaps_layer1(world.truth(record.asn))
        assert hits / total >= 0.82
