"""Branch-level tests for the Figure-4 pipeline using stub components.

These isolate each decision in ``repro.core.pipeline.ASdb`` - the
high-confidence ASN match, the ML-vs-sources arbitration, empty-label
handling - with hand-built sources, independent of the world simulation.
"""

from typing import Dict, Optional

import pytest

from repro.core import ASdb, Stage
from repro.datasources.base import DataSource, Query, SourceEntry, SourceMatch
from repro.matching.domains import DomainFrequencyIndex
from repro.matching.resolver import EntityResolver
from repro.ml.pipeline import ClassifierVerdict
from repro.taxonomy import Label, LabelSet
from repro.web import Page, WebUniverse, Website
from repro.whois import WhoisFacts, WhoisRegistry, render
from repro.whois.records import RIR


class StubSource(DataSource):
    """Returns a fixed match for every query (or None)."""

    def __init__(self, name, labels=None, domain=None, native=(),
                 by_asn=False):
        self.name = name
        self._labels = labels
        self._domain = domain
        self._native = native
        self._by_asn = by_asn

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        if self._labels is None:
            return None
        if self._by_asn and query.asn is None:
            return None
        entry = SourceEntry(
            entity_id=f"{self.name}-1",
            org_id="org-stub",
            name="Stub Org",
            domain=self._domain,
            native_categories=self._native,
            labels=self._labels,
        )
        return SourceMatch(source=self.name, entry=entry)


class StubML:
    """A fake trained pipeline with a fixed verdict."""

    def __init__(self, is_isp=False, is_hosting=False, scraped=True):
        self._verdict = dict(
            is_isp=is_isp, is_hosting=is_hosting, scraped=scraped
        )
        self.calls = 0

    def classify_domain(self, domain):
        self.calls += 1
        return ClassifierVerdict(
            domain=domain,
            scraped=self._verdict["scraped"],
            is_isp=self._verdict["is_isp"],
            is_hosting=self._verdict["is_hosting"],
            isp_score=0.9 if self._verdict["is_isp"] else 0.1,
            hosting_score=0.9 if self._verdict["is_hosting"] else 0.1,
        )


def _registry_with_one_as(asn=65001, domain="stub.example"):
    registry = WhoisRegistry()
    facts = WhoisFacts(
        asn=asn,
        as_name="STUB-AS",
        org_name="Stub Org",
        emails=(f"abuse@{domain}",),
        country="US",
    )
    registry.register(render(facts, RIR.ARIN))
    return registry


def _web_with(domain="stub.example"):
    web = WebUniverse()
    web.add(Website(domain=domain,
                    homepage=Page(title="Stub Org - Home", text="words")))
    return web


def _build(
    peeringdb=None,
    ipinfo=None,
    identifier_sources=(),
    ml=None,
    asn=65001,
):
    registry = _registry_with_one_as(asn=asn)
    web = _web_with()
    resolver = EntityResolver(
        web, DomainFrequencyIndex(), list(identifier_sources)
    )
    return ASdb(
        registry=registry,
        resolver=resolver,
        peeringdb=peeringdb or StubSource("peeringdb", None),
        ipinfo=ipinfo or StubSource("ipinfo", None),
        ml_pipeline=ml,
    )


ISP = LabelSet.from_layer2_slugs(["isp"])
HOSTING = LabelSet.from_layer2_slugs(["hosting"])
BANKS = LabelSet.from_layer2_slugs(["banks"])


class TestStage1HighConfidence:
    def test_peeringdb_isp_short_circuits(self):
        pdb = StubSource("peeringdb", ISP, native=("Cable/DSL/ISP",),
                         by_asn=True)
        dnb = StubSource("dnb", BANKS)
        asdb = _build(peeringdb=pdb, identifier_sources=[dnb])
        record = asdb.classify(65001)
        assert record.stage is Stage.MATCHED_BY_ASN
        assert record.labels == ISP
        assert record.sources == ("peeringdb",)

    def test_peeringdb_non_isp_does_not_short_circuit(self):
        content = LabelSet.from_layer2_slugs(["streaming"])
        pdb = StubSource("peeringdb", content, by_asn=True)
        dnb = StubSource("dnb", BANKS)
        asdb = _build(peeringdb=pdb, identifier_sources=[dnb])
        record = asdb.classify(65001)
        assert record.stage is not Stage.MATCHED_BY_ASN
        # PeeringDB's labels still join the consensus pool.
        assert record.stage is Stage.MULTI_DISAGREE

    def test_ipinfo_never_short_circuits(self):
        ipinfo = StubSource("ipinfo", ISP, by_asn=True)
        asdb = _build(ipinfo=ipinfo)
        record = asdb.classify(65001)
        assert record.stage is Stage.ONE_SOURCE
        assert record.labels == ISP


class TestMLArbitration:
    def test_classifier_fires_without_sources(self):
        asdb = _build(ml=StubML(is_isp=True))
        record = asdb.classify(65001)
        assert record.stage is Stage.CLASSIFIER
        assert record.labels == ISP
        assert "classifier" in record.sources

    def test_agreeing_sources_override_classifier(self):
        # Section 5.2: hosting flagged by the classifier but marked
        # non-hosting by >= 2 agreeing sources -> the sources win.
        dnb = StubSource("dnb", BANKS)
        zvelo = StubSource("zvelo", BANKS)
        asdb = _build(identifier_sources=[dnb, zvelo],
                      ml=StubML(is_hosting=True))
        record = asdb.classify(65001)
        assert record.stage is Stage.MULTI_AGREE
        assert record.labels == BANKS

    def test_supporting_source_unions_with_classifier(self):
        dnb = StubSource("dnb", LabelSet.from_layer2_slugs(
            ["isp", "phone_provider"]))
        asdb = _build(identifier_sources=[dnb], ml=StubML(is_isp=True))
        record = asdb.classify(65001)
        assert record.stage is Stage.CLASSIFIER
        assert record.labels.layer2_slugs() == {"isp", "phone_provider"}
        assert set(record.sources) == {"classifier", "dnb"}

    def test_disagreeing_single_source_loses_to_classifier(self):
        dnb = StubSource("dnb", BANKS)
        asdb = _build(identifier_sources=[dnb], ml=StubML(is_isp=True))
        record = asdb.classify(65001)
        assert record.stage is Stage.CLASSIFIER
        assert record.labels == ISP

    def test_unscraped_verdict_is_no_information(self):
        asdb = _build(ml=StubML(is_isp=True, scraped=False))
        record = asdb.classify(65001)
        assert record.stage is Stage.ZERO_SOURCES
        assert not record.labels

    def test_ml_skipped_without_domain(self):
        ml = StubML(is_isp=True)
        registry = WhoisRegistry()
        facts = WhoisFacts(asn=65002, as_name="NODOMAIN-AS",
                           org_name="No Domain Org")
        registry.register(render(facts, RIR.ARIN))
        resolver = EntityResolver(
            WebUniverse(), DomainFrequencyIndex(), []
        )
        asdb = ASdb(
            registry=registry,
            resolver=resolver,
            peeringdb=StubSource("peeringdb", None),
            ipinfo=StubSource("ipinfo", None),
            ml_pipeline=ml,
        )
        record = asdb.classify(65002)
        assert ml.calls == 0
        assert record.stage is Stage.ZERO_SOURCES


class TestEmptyLabelHandling:
    def test_ipinfo_business_is_not_a_source(self):
        # IPinfo "business" translates to no NAICSlite labels; it must
        # not count toward the source tally.
        business = StubSource("ipinfo", LabelSet(), by_asn=True)
        dnb = StubSource("dnb", BANKS)
        asdb = _build(ipinfo=business, identifier_sources=[dnb])
        record = asdb.classify(65001)
        assert record.stage is Stage.ONE_SOURCE
        assert record.sources == ("dnb",)

    def test_nothing_anywhere_is_zero_sources(self):
        asdb = _build()
        record = asdb.classify(65001)
        assert record.stage is Stage.ZERO_SOURCES
        assert not record.classified


class TestDomainHints:
    def test_ipinfo_domain_hint_fills_whois_gap(self):
        # WHOIS has no domain, but IPinfo publishes one; the hint makes
        # the ML stage reachable.
        registry = WhoisRegistry()
        facts = WhoisFacts(asn=65003, as_name="HINTED-AS",
                           org_name="Hinted Org")
        registry.register(render(facts, RIR.ARIN))
        web = _web_with("hinted.example")
        ipinfo = StubSource(
            "ipinfo", LabelSet(), domain="hinted.example", by_asn=True
        )
        ml = StubML(is_isp=True)
        resolver = EntityResolver(web, DomainFrequencyIndex(), [])
        asdb = ASdb(
            registry=registry,
            resolver=resolver,
            peeringdb=StubSource("peeringdb", None),
            ipinfo=ipinfo,
            ml_pipeline=ml,
        )
        record = asdb.classify(65003)
        assert ml.calls == 1
        assert record.domain == "hinted.example"
        assert record.stage is Stage.CLASSIFIER
