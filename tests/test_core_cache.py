"""Unit tests for the organization cache hit/miss/none-key accounting."""

from repro.core.cache import OrganizationCache, org_cache_key
from repro.whois.extraction import ExtractedContact


def _contact(name):
    return ExtractedContact(asn=64512, name=name, name_source="org")


class TestOrgCacheKey:
    def test_domain_beats_name(self):
        key = org_cache_key(_contact("Acme Networks"), domain="acme.net")
        assert key == "domain:acme.net"

    def test_name_fallback_is_order_insensitive(self):
        first = org_cache_key(_contact("Acme Networks"), domain=None)
        second = org_cache_key(_contact("Networks Acme"), domain=None)
        assert first == second
        assert first.startswith("name:")

    def test_nothing_usable_is_none(self):
        assert org_cache_key(_contact(""), domain=None) is None


class TestOrganizationCache:
    def test_hit_and_miss_counts(self):
        cache = OrganizationCache()
        assert cache.get("domain:a.net") is None
        cache.put("domain:a.net", "record")
        assert cache.get("domain:a.net") == "record"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_none_key_counted_separately_not_as_miss(self):
        cache = OrganizationCache()
        cache.put("domain:a.net", "record")
        cache.get("domain:a.net")
        assert cache.get(None) is None
        assert cache.get(None) is None
        assert cache.none_keys == 2
        assert cache.misses == 0
        # None-key lookups must not dilute the hit rate.
        assert cache.hit_rate == 1.0

    def test_put_none_key_is_noop(self):
        cache = OrganizationCache()
        cache.put(None, "record")
        assert len(cache) == 0

    def test_invalidate(self):
        cache = OrganizationCache()
        cache.put("k", "record")
        cache.invalidate("k")
        cache.invalidate("k")  # idempotent
        cache.invalidate(None)  # tolerated
        assert cache.get("k") is None

    def test_empty_hit_rate_is_zero(self):
        assert OrganizationCache().hit_rate == 0.0
