"""Property-based robustness tests across the parsing/matching stack.

The pipeline must survive arbitrary bulk-WHOIS garbage, adversarial
names, and degenerate label sets without crashing - these tests feed it
generated junk and assert only safety properties.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.consensus import (
    majority_vote,
    resolve_consensus,
    single_best_source,
)
from repro.datasources.base import SourceEntry, SourceMatch
from repro.matching.similarity import jaccard, lcs_ratio, name_similarity
from repro.taxonomy import LabelSet, naicslite
from repro.web.translate import detect_language, translate_to_english
from repro.whois.parsers import parse_arin, parse_lacnic, parse_rpsl
from repro.whois.records import RIR, RawWhoisObject

LAYER2_SLUGS = [sub.slug for sub in naicslite.ALL_LAYER2]

_text = st.text(max_size=400)


class TestParserRobustness:
    @given(text=_text)
    @settings(max_examples=200)
    def test_rpsl_parser_never_crashes(self, text):
        parsed = parse_rpsl(
            RawWhoisObject(rir=RIR.RIPE, asn=65000, text=text)
        )
        assert parsed.asn >= 0

    @given(text=_text)
    @settings(max_examples=200)
    def test_arin_parser_never_crashes(self, text):
        parsed = parse_arin(
            RawWhoisObject(rir=RIR.ARIN, asn=65000, text=text)
        )
        assert parsed.rir is RIR.ARIN

    @given(text=_text)
    @settings(max_examples=200)
    def test_lacnic_parser_never_crashes(self, text):
        parsed = parse_lacnic(
            RawWhoisObject(rir=RIR.LACNIC, asn=65000, text=text)
        )
        assert parsed.emails == ()

    @given(
        keys=st.lists(
            st.sampled_from(
                ["aut-num", "as-name", "descr", "org-name", "address",
                 "country", "phone", "e-mail", "remarks", "bogus-key"]
            ),
            min_size=0,
            max_size=20,
        ),
        values=st.lists(st.text(alphabet=st.characters(
            blacklist_characters="\n\r"), max_size=40), min_size=0,
            max_size=20),
    )
    def test_rpsl_arbitrary_key_value_soup(self, keys, values):
        lines = [
            f"{key}: {value}"
            for key, value in zip(keys, values)
        ]
        parsed = parse_rpsl(
            RawWhoisObject(
                rir=RIR.APNIC, asn=1, text="\n".join(lines)
            )
        )
        # Multi-valued fields stay deduplicated and ordered.
        assert len(parsed.emails) == len(set(parsed.emails))


class TestSimilarityProperties:
    @given(st.sets(st.text(max_size=8), max_size=10))
    def test_jaccard_self_is_one(self, tokens):
        assert jaccard(tokens, tokens) == 1.0

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_lcs_ratio_bounded(self, a, b):
        assert 0.0 <= lcs_ratio(a, b) <= 1.0

    @given(st.text(min_size=1, max_size=30))
    def test_lcs_self_is_one(self, a):
        assert lcs_ratio(a, a) == 1.0

    @given(st.text(max_size=30), st.text(max_size=30),
           st.text(max_size=30))
    @settings(max_examples=60)
    def test_name_similarity_no_crash_triple(self, a, b, c):
        for pair in ((a, b), (b, c), (a, c)):
            assert 0.0 <= name_similarity(*pair) <= 1.0


def _match(source, slugs):
    return SourceMatch(
        source=source,
        entry=SourceEntry(
            entity_id=f"{source}-x",
            org_id="org",
            name="X",
            domain=None,
            native_categories=(),
            labels=LabelSet.from_layer2_slugs(slugs),
        ),
    )


_sources = st.sampled_from(
    ["dnb", "crunchbase", "zvelo", "peeringdb", "ipinfo"]
)
_matches = st.dictionaries(
    keys=_sources,
    values=st.lists(st.sampled_from(LAYER2_SLUGS), min_size=0, max_size=4),
    max_size=5,
).map(
    lambda d: {name: _match(name, slugs) for name, slugs in d.items()}
)


class TestConsensusProperties:
    @given(matches=_matches)
    def test_strategies_never_crash(self, matches):
        for strategy in (resolve_consensus, single_best_source,
                         majority_vote):
            result = strategy(matches)
            assert result.labels is not None

    @given(matches=_matches)
    def test_result_labels_come_from_inputs(self, matches):
        result = resolve_consensus(matches)
        available = set()
        for match in matches.values():
            available |= match.labels.layer2_slugs()
        assert result.labels.layer2_slugs() <= available

    @given(matches=_matches)
    def test_trusted_sources_are_input_sources(self, matches):
        result = resolve_consensus(matches)
        assert set(result.trusted_sources) <= set(matches)

    @given(matches=_matches)
    def test_deterministic(self, matches):
        a = resolve_consensus(matches)
        b = resolve_consensus(dict(matches))
        assert a.labels == b.labels
        assert a.stage is b.stage

    @given(slugs=st.lists(st.sampled_from(LAYER2_SLUGS), min_size=1,
                          max_size=4))
    def test_single_source_passthrough(self, slugs):
        matches = {"dnb": _match("dnb", slugs)}
        result = resolve_consensus(matches)
        assert result.labels == matches["dnb"].labels


class TestTranslationRobustness:
    @given(text=_text)
    @settings(max_examples=100)
    def test_translate_never_crashes(self, text):
        result = translate_to_english(text)
        assert isinstance(result.text, str)
        assert 0.0 <= result.translated_fraction <= 1.0

    @given(text=_text)
    @settings(max_examples=100)
    def test_detection_total(self, text):
        assert detect_language(text) is not None

    @given(words=st.lists(st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10),
        min_size=1, max_size=15))
    def test_english_text_passes_through(self, words):
        # Words that don't end in any cipher suffix must be untouched.
        from repro.web.language import LANGUAGES

        suffixes = tuple(l.suffix for l in LANGUAGES if not l.is_english)
        clean = [w for w in words if not w.endswith(suffixes)]
        if not clean:
            return
        text = " ".join(clean)
        result = translate_to_english(text)
        if result.detected.is_english:
            assert result.text == text
