"""Tests for site generation and the keyword-link-following scraper."""

import random

import pytest

from repro.web import (
    Link,
    Page,
    Scraper,
    SiteTraits,
    WebUniverse,
    Website,
    by_code,
    generate_site,
)


def _universe_with(site):
    universe = WebUniverse()
    universe.add(site)
    return universe


def _simple_site(domain="acme.net", link_title="About Us",
                 inner_text="hosting cloud server", home_text="welcome home"):
    inner = Page(title=link_title, text=inner_text)
    home = Page(title="Acme - Home", text=home_text)
    return Website(
        domain=domain, homepage=home, links=(Link(link_title, inner),)
    )


class TestScraper:
    def test_scrapes_homepage(self):
        universe = _universe_with(_simple_site())
        result = Scraper(universe).scrape("acme.net")
        assert result.reachable
        assert "welcome home" in result.text

    def test_follows_keyword_links(self):
        universe = _universe_with(_simple_site(link_title="Our Services"))
        result = Scraper(universe).scrape("acme.net")
        assert "hosting" in result.text
        assert "Our Services" in result.pages_visited

    def test_skips_non_keyword_links(self):
        universe = _universe_with(_simple_site(link_title="Press Releases"))
        result = Scraper(universe).scrape("acme.net")
        assert "hosting" not in result.text
        assert "Press Releases" not in result.pages_visited

    def test_unreachable_domain(self):
        universe = WebUniverse()
        result = Scraper(universe).scrape("nosuch.example")
        assert not result.reachable
        assert result.empty

    def test_down_domain(self):
        universe = _universe_with(_simple_site())
        universe.mark_down("acme.net")
        result = Scraper(universe).scrape("acme.net")
        assert not result.reachable

    def test_max_internal_pages_respected(self):
        links = tuple(
            Link(f"Our Services {i}", Page(f"Our Services {i}", f"word{i}"))
            for i in range(8)
        )
        site = Website(
            domain="big.net",
            homepage=Page("Big - Home", "home"),
            links=links,
        )
        result = Scraper(_universe_with(site)).scrape("big.net")
        # Homepage + at most five internal pages (Figure 3).
        assert len(result.pages_visited) <= 6

    def test_text_in_images_yields_nothing(self):
        home = Page("Pix - Home", "hidden words", text_in_images=True)
        site = Website(domain="pix.net", homepage=home)
        result = Scraper(_universe_with(site)).scrape("pix.net")
        assert result.reachable
        assert result.empty

    def test_translation_applied(self):
        lang = by_code("xa")
        home = Page(
            "Foreign - Home",
            " ".join(lang.encode_word(w) for w in
                     ["hosting", "cloud", "server", "uptime", "rack"]),
        )
        site = Website(domain="foreign.net", homepage=home,
                       language_code="xa")
        result = Scraper(_universe_with(site)).scrape("foreign.net")
        assert "hosting" in result.text
        assert result.detected_language == "xa"

    def test_translation_can_be_disabled(self):
        lang = by_code("xa")
        home = Page(
            "Foreign - Home",
            " ".join(lang.encode_word(w) for w in
                     ["hosting", "cloud", "server", "uptime", "rack"]),
        )
        site = Website(domain="foreign.net", homepage=home)
        result = Scraper(
            _universe_with(site), translate=False
        ).scrape("foreign.net")
        assert "hosting" not in result.text

    def test_internal_link_following_can_be_disabled(self):
        universe = _universe_with(_simple_site(link_title="Our Services"))
        result = Scraper(
            universe, follow_internal_links=False
        ).scrape("acme.net")
        assert "hosting" not in result.text


class TestSiteGenerator:
    def _gen(self, traits=SiteTraits(), slug="hosting", seed=11):
        return generate_site(
            random.Random(seed), "Acme Hosting", "acme.net", slug, traits
        )

    def test_homepage_title_echoes_org_name(self):
        site = self._gen()
        assert "Acme Hosting" in site.homepage.title

    def test_generated_site_scrapes_category_keywords(self):
        site = self._gen()
        result = Scraper(_universe_with(site)).scrape("acme.net")
        tokens = set(result.text.split())
        assert tokens & {"hosting", "cloud", "server", "colocation",
                         "uptime", "vps", "datacenter"}

    def test_uninformative_site(self):
        site = self._gen(SiteTraits(uninformative=True))
        result = Scraper(_universe_with(site)).scrape("acme.net")
        assert "hosting" not in result.text
        assert "server" in result.text  # "...default web page for this server"

    def test_hidden_info_defeats_scraper(self):
        site = self._gen(SiteTraits(hidden_info=True), seed=3)
        result = Scraper(_universe_with(site)).scrape("acme.net")
        hidden_page_titles = {
            "Portfolio", "Blog", "Press Releases", "Investors",
            "Legal Notices",
        }
        assert not (set(result.pages_visited) & hidden_page_titles)
        # The informative page exists on the site, though.
        assert any(link.title in hidden_page_titles for link in site.links)

    def test_text_in_images_trait(self):
        site = self._gen(SiteTraits(text_in_images=True))
        result = Scraper(_universe_with(site)).scrape("acme.net")
        assert result.empty

    def test_non_english_site_roundtrips(self):
        lang = by_code("xb")
        site = self._gen(SiteTraits(language=lang))
        assert site.language_code == "xb"
        result = Scraper(_universe_with(site)).scrape("acme.net")
        tokens = set(result.text.split())
        assert tokens & {"hosting", "cloud", "server", "colocation",
                         "uptime", "vps", "datacenter"}

    def test_misleading_keywords_injected(self):
        site = self._gen(
            SiteTraits(misleading_keywords=("cloud", "computing")),
            slug="research",
        )
        result = Scraper(_universe_with(site)).scrape("acme.net")
        assert "cloud" in result.text.split()

    def test_deterministic(self):
        a = self._gen(seed=5)
        b = self._gen(seed=5)
        assert a.homepage.text == b.homepage.text
        assert [l.title for l in a.links] == [l.title for l in b.links]
