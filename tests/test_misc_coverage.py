"""Remaining small-surface tests: reporting options, platform pool
mechanics, stage display strings, registry iteration order."""

import pytest

from repro.core import Stage
from repro.crowd import MTurkPlatform
from repro.reporting import render_bars, render_table


class TestReportingOptions:
    def test_bars_raw_values(self):
        text = render_bars(["a", "b"], [1.5, 3.0], as_percent=False)
        assert "3.00" in text and "1.50" in text

    def test_bars_zero_values(self):
        text = render_bars(["a"], [0.0])
        assert "0%" in text

    def test_table_without_title(self):
        text = render_table(["X"], [["y"]])
        assert text.splitlines()[0] == "X"

    def test_table_numeric_cells(self):
        text = render_table(["N"], [[42]])
        assert "42" in text


class TestStageDisplay:
    def test_all_stages_have_display(self):
        for stage in Stage:
            assert stage.display

    def test_display_matches_table8_vocabulary(self):
        assert Stage.MULTI_AGREE.display.startswith(">=2 Sources")
        assert Stage.ZERO_SOURCES.display == "0 Sources Matched"


class TestPlatformPool:
    def test_worker_assignment_no_overlap_until_wrap(self, medium_world):
        orgs = list(medium_world.iter_organizations())[:10]
        platform = MTurkPlatform(seed=1, pool_size=100)
        first = platform.run_batch(orgs, reward_cents=30)
        second = platform.run_batch(orgs, reward_cents=30)
        workers_first = {
            response.worker_id
            for task in first.tasks
            for response in task.responses
        }
        workers_second = {
            response.worker_id
            for task in second.tasks
            for response in task.responses
        }
        # 10 orgs x 3 workers = 30 per batch; pool of 100 -> disjoint.
        assert not (workers_first & workers_second)

    def test_pool_wraps_when_exhausted(self, medium_world):
        orgs = list(medium_world.iter_organizations())[:10]
        platform = MTurkPlatform(seed=1, pool_size=12)
        batch = platform.run_batch(orgs, reward_cents=30)
        workers = [
            response.worker_id
            for task in batch.tasks
            for response in task.responses
        ]
        assert len(workers) == 30
        assert len(set(workers)) == 12  # wrapped


class TestRegistryIteration:
    def test_world_asns_sorted(self, small_world):
        asns = small_world.asns()
        assert asns == sorted(asns)

    def test_registry_and_world_agree(self, small_world):
        assert small_world.registry.asns() == small_world.asns()
