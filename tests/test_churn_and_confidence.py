"""Tests for registry churn simulation and record confidence priors."""

import pytest

from repro.core import ASdbRecord, Stage
from repro.taxonomy import LabelSet
from repro.world import WorldConfig, generate_world, simulate_churn


class TestChurn:
    @pytest.fixture()
    def world(self):
        return generate_world(WorldConfig(n_orgs=200, seed=88))

    def test_rates_scale_with_world_size(self, world):
        n_base = len(world.asns())
        stats = simulate_churn(world, days=365, seed=1)
        expected = 21.0 / 100_000.0 * n_base * 365
        assert abs(len(stats.new_asns) - expected) <= max(
            3, 0.4 * expected
        )

    def test_new_ases_registered_and_parseable(self, world):
        stats = simulate_churn(world, days=365, seed=1)
        for asn in stats.new_asns:
            assert asn in world.registry
            assert asn in world.ases
            contact = world.registry.contact(asn)
            assert contact.name

    def test_new_orgs_have_truth(self, world):
        stats = simulate_churn(world, days=365, seed=1)
        for asn in stats.new_asns:
            assert world.truth(asn)

    def test_updates_bump_registry_version(self, world):
        stats = simulate_churn(world, days=120, seed=2)
        for asn in stats.updated_asns:
            assert world.registry.entry(asn).version >= 2

    def test_some_new_ases_join_existing_orgs(self, world):
        stats = simulate_churn(world, days=2000, seed=3)
        joined = sum(
            1
            for asn in stats.new_asns
            if not world.ases[asn].org_id.startswith("org-churn")
        )
        # 19 of 21 new ASes belong to new orgs; the rest join old ones.
        assert joined >= 1

    def test_zero_days_is_noop(self, world):
        before = world.asns()
        stats = simulate_churn(world, days=0, seed=4)
        assert stats.new_asns == ()
        assert world.asns() == before

    def test_deterministic(self):
        a_world = generate_world(WorldConfig(n_orgs=150, seed=5))
        b_world = generate_world(WorldConfig(n_orgs=150, seed=5))
        a = simulate_churn(a_world, days=365, seed=9)
        b = simulate_churn(b_world, days=365, seed=9)
        assert a.new_asns == b.new_asns
        assert a.updated_asns == b.updated_asns


class TestConfidencePriors:
    def test_all_stages_have_priors(self):
        for stage in Stage:
            assert 0.0 <= stage.prior_accuracy <= 1.0

    def test_agreement_most_trusted(self):
        assert Stage.MULTI_AGREE.prior_accuracy >= (
            Stage.MULTI_DISAGREE.prior_accuracy
        )
        assert Stage.MULTI_AGREE.prior_accuracy >= (
            Stage.ONE_SOURCE.prior_accuracy
        )

    def test_unclassified_record_zero_confidence(self):
        record = ASdbRecord(
            asn=1, labels=LabelSet(), stage=Stage.ZERO_SOURCES
        )
        assert record.confidence == 0.0

    def test_classified_record_inherits_stage_prior(self):
        record = ASdbRecord(
            asn=1,
            labels=LabelSet.from_layer2_slugs(["isp"]),
            stage=Stage.MULTI_AGREE,
        )
        assert record.confidence == Stage.MULTI_AGREE.prior_accuracy

    def test_confidence_correlates_with_accuracy(self, medium_world):
        """High-confidence records really are more accurate."""
        from repro import SystemConfig, build_asdb

        built = build_asdb(medium_world, SystemConfig(seed=1))
        dataset = built.asdb.classify_all()
        buckets = {"high": [0, 0], "low": [0, 0]}
        for record in dataset:
            if not record.classified:
                continue
            key = "high" if record.confidence >= 0.95 else "low"
            buckets[key][1] += 1
            buckets[key][0] += record.labels.overlaps_layer1(
                medium_world.truth(record.asn)
            )
        high = buckets["high"][0] / max(buckets["high"][1], 1)
        low = buckets["low"][0] / max(buckets["low"][1], 1)
        assert buckets["high"][1] > 20 and buckets["low"][1] > 20
        assert high >= low
