"""Tests for repro.obs.health: ledger loading, SLO evaluation, and
the `repro report` / `repro health` CLI surface."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    LedgerError,
    MetricsRegistry,
    RunLog,
    SloError,
    evaluate_slos,
    load_events,
    load_slos,
    render_compare,
    render_health,
    render_report,
)
from repro.obs.health import percentile, stage_durations


def _make_ledger(tmp_path, name="run.ndjson", hit_rate=0.25,
                 degraded=(2, 100), sweeps=()):
    """A small, fully synthetic but schema-correct ledger."""
    path = tmp_path / name
    registry = MetricsRegistry()
    registry.gauge("asdb_cache_hit_rate").set(hit_rate)
    log = RunLog(str(path), kind="classify", config={"seed": 1},
                 world={"n_orgs": 10})
    log.emit("as.trace", asn=64512, total_seconds=0.011, spans=[
        {"name": "cache", "start_offset": 0.0, "duration": 0.001,
         "status": "miss", "attributes": {}},
        {"name": "ml", "start_offset": 0.001, "duration": 0.01,
         "status": "isp", "attributes": {}},
    ])
    log.emit("as.trace", asn=64513, total_seconds=0.004, spans=[
        {"name": "ml", "start_offset": 0.0, "duration": 0.004,
         "status": "other", "attributes": {}},
    ])
    for reclassified in sweeps:
        log.emit("sweep.report", since_day=0, through_day=30,
                 new=0, updated=reclassified, reclassified=reclassified,
                 snapshot_version=2)
    log.finish(
        status="ok", metrics=registry,
        degraded={"records": degraded[0], "total": degraded[1]},
    )
    return path


def _slo_file(tmp_path, slos, name="slo.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"slos": slos}))
    return path


class TestLedgerLoading:
    def test_missing_run_start_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"event": "span", "run": "x", "seq": 0}\n')
        with pytest.raises(LedgerError):
            load_events(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        with pytest.raises(LedgerError):
            load_events(str(path))

    def test_stage_durations_and_percentile(self, tmp_path):
        events = load_events(str(_make_ledger(tmp_path)))
        durations = stage_durations(events)
        assert durations["ml"] == [0.01, 0.004]
        assert durations["cache"] == [0.001]
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert percentile([1.0], 0.99) == 1.0
        assert percentile([], 0.99) == 0.0


class TestSloLoading:
    def test_rules_parse_flat_params(self, tmp_path):
        path = _slo_file(tmp_path, [
            {"id": "ml", "kind": "max_stage_p99_seconds",
             "stage": "ml", "max": 0.5},
        ])
        (rule,) = load_slos(str(path))
        assert rule.id == "ml"
        assert rule.params == {"stage": "ml", "max": 0.5}

    def test_unknown_kind_rejected(self, tmp_path):
        path = _slo_file(tmp_path, [{"kind": "max_vibes"}])
        with pytest.raises(SloError):
            load_slos(str(path))

    def test_duplicate_id_rejected(self, tmp_path):
        path = _slo_file(tmp_path, [
            {"id": "a", "kind": "max_run_seconds", "max": 1},
            {"id": "a", "kind": "max_run_seconds", "max": 2},
        ])
        with pytest.raises(SloError):
            load_slos(str(path))

    def test_empty_slos_rejected(self, tmp_path):
        path = _slo_file(tmp_path, [])
        with pytest.raises(SloError):
            load_slos(str(path))


class TestEvaluation:
    @pytest.fixture()
    def events(self, tmp_path):
        return load_events(str(_make_ledger(
            tmp_path, hit_rate=0.25, degraded=(2, 100), sweeps=(7,)
        )))

    def _eval_one(self, events, slo, tmp_path):
        rules = load_slos(str(_slo_file(tmp_path, [slo], "one.json")))
        (result,) = evaluate_slos(events, rules)
        return result

    def test_stage_p99_pass_and_fail(self, events, tmp_path):
        ok = self._eval_one(events, {
            "kind": "max_stage_p99_seconds", "stage": "ml", "max": 0.5,
        }, tmp_path)
        assert ok.ok and ok.observed == pytest.approx(0.01)
        bad = self._eval_one(events, {
            "kind": "max_stage_p99_seconds", "stage": "ml",
            "max": 0.001,
        }, tmp_path)
        assert not bad.ok

    def test_unknown_stage_is_skipped(self, events, tmp_path):
        result = self._eval_one(events, {
            "kind": "max_stage_p99_seconds", "stage": "nope", "max": 1,
        }, tmp_path)
        assert result.ok and result.skipped

    def test_degraded_fraction(self, events, tmp_path):
        result = self._eval_one(events, {
            "kind": "max_degraded_fraction", "max": 0.01,
        }, tmp_path)
        assert not result.ok
        assert result.observed == pytest.approx(0.02)

    def test_cache_hit_rate(self, events, tmp_path):
        result = self._eval_one(events, {
            "kind": "min_cache_hit_rate", "min": 0.2,
        }, tmp_path)
        assert result.ok and result.observed == pytest.approx(0.25)

    def test_reclassified_budget(self, events, tmp_path):
        result = self._eval_one(events, {
            "kind": "max_reclassified", "max": 5,
        }, tmp_path)
        assert not result.ok and result.observed == 7

    def test_reclassified_skipped_without_sweeps(self, tmp_path):
        events = load_events(str(_make_ledger(tmp_path, sweeps=())))
        result = self._eval_one(events, {
            "kind": "max_reclassified", "max": 5,
        }, tmp_path)
        assert result.ok and result.skipped

    def test_missing_param_fails_loudly(self, events, tmp_path):
        result = self._eval_one(events, {
            "kind": "max_run_seconds",
        }, tmp_path)
        assert not result.ok and not result.skipped

    def test_render_health_verdict_lines(self, events, tmp_path):
        rules = load_slos(str(_slo_file(tmp_path, [
            {"id": "ok", "kind": "max_run_seconds", "max": 300},
            {"id": "bad", "kind": "min_cache_hit_rate", "min": 0.9},
            {"id": "skip", "kind": "max_stage_p99_seconds",
             "stage": "nope", "max": 1},
        ], "three.json")))
        text = render_health(evaluate_slos(events, rules))
        assert "1 breach(es)" in text
        assert "PASS" in text and "FAIL" in text and "SKIP" in text


class TestRendering:
    def test_report_renders_from_ledger_alone(self, tmp_path):
        path = _make_ledger(tmp_path, sweeps=(3,))
        text = render_report(load_events(str(path)), str(path))
        assert "run " in text and "(classify)" in text
        assert "per-stage rollup" in text
        assert "ml" in text
        assert "sweep days 0..30" in text

    def test_compare_tracks_relative_deltas(self, tmp_path):
        a = _make_ledger(tmp_path, "a.ndjson", hit_rate=0.2)
        b = _make_ledger(tmp_path, "b.ndjson", hit_rate=0.4)
        text = render_compare(
            load_events(str(a)), load_events(str(b)), str(a), str(b)
        )
        assert "run comparison" in text
        assert "cache_hit_rate" in text
        assert "stage_p99_seconds/ml" in text


class TestHealthCli:
    def test_breach_exits_one(self, tmp_path, capsys):
        ledger = _make_ledger(tmp_path)
        slo = _slo_file(tmp_path, [
            {"id": "wall", "kind": "max_run_seconds", "max": 0.0},
        ])
        assert main(["health", "--slo", str(slo), str(ledger)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "wall" in out

    def test_all_pass_exits_zero(self, tmp_path, capsys):
        ledger = _make_ledger(tmp_path)
        slo = _slo_file(tmp_path, [
            {"id": "wall", "kind": "max_run_seconds", "max": 300},
            {"id": "cache", "kind": "min_cache_hit_rate", "min": 0.1},
        ])
        assert main(["health", "--slo", str(slo), str(ledger)]) == 0
        assert "0 breach(es)" in capsys.readouterr().out

    def test_bad_slo_file_exits_two(self, tmp_path, capsys):
        ledger = _make_ledger(tmp_path)
        slo = _slo_file(tmp_path, [{"kind": "max_vibes"}])
        assert main(["health", "--slo", str(slo), str(ledger)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_ledger_exits_two(self, tmp_path, capsys):
        slo = _slo_file(tmp_path, [
            {"id": "wall", "kind": "max_run_seconds", "max": 1},
        ])
        assert main([
            "health", "--slo", str(slo), str(tmp_path / "nope.ndjson")
        ]) == 2


class TestReportCli:
    def test_report_single_ledger(self, tmp_path, capsys):
        ledger = _make_ledger(tmp_path)
        assert main(["report", str(ledger)]) == 0
        assert "per-stage rollup" in capsys.readouterr().out

    def test_report_compare(self, tmp_path, capsys):
        a = _make_ledger(tmp_path, "a.ndjson")
        b = _make_ledger(tmp_path, "b.ndjson")
        assert main(["report", "--compare", str(a), str(b)]) == 0
        assert "run comparison" in capsys.readouterr().out

    def test_report_without_args_exits_two(self, capsys):
        assert main(["report"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.ndjson")]) == 2
