"""Tests for bulk WHOIS dump serialization and loading."""

import io

import pytest

from repro.whois import WhoisFacts, WhoisRegistry, render
from repro.whois.dump import iter_dump_objects, read_dump, write_dump
from repro.whois.records import RIR


def _registry(n=5):
    registry = WhoisRegistry()
    rirs = list(RIR)
    for index in range(n):
        facts = WhoisFacts(
            asn=65000 + index,
            as_name=f"ORG{index}-AS",
            org_name=f"Org {index} Inc",
            emails=(f"abuse@org{index}.example",),
            country="US",
            city="Springfield",
        )
        registry.register(render(facts, rirs[index % len(rirs)]))
    return registry


class TestRoundTrip:
    def test_write_read_preserves_everything(self):
        original = _registry()
        buffer = io.StringIO()
        count = write_dump(original, buffer)
        assert count == len(original)
        restored = read_dump(io.StringIO(buffer.getvalue()))
        assert restored.asns() == original.asns()
        for asn in original.asns():
            assert restored.raw(asn).rir is original.raw(asn).rir
            assert (
                restored.parsed(asn).org_name
                == original.parsed(asn).org_name
            )

    def test_extraction_survives_round_trip(self):
        original = _registry()
        buffer = io.StringIO()
        write_dump(original, buffer)
        restored = read_dump(io.StringIO(buffer.getvalue()))
        for asn in original.asns():
            assert (
                restored.contact(asn).candidate_domains
                == original.contact(asn).candidate_domains
            )


class TestHeaderlessDumps:
    def test_arin_dialect_detected(self):
        text = (
            "ASNumber:       701\n"
            "ASName:         UUNET\n"
            "OrgName:        Verizon Business\n"
            "Country:        US\n"
        )
        objects = list(iter_dump_objects(io.StringIO(text)))
        assert len(objects) == 1
        assert objects[0].rir is RIR.ARIN
        assert objects[0].asn == 701

    def test_rpsl_dialect_default(self):
        text = (
            "aut-num:        AS3320\n"
            "as-name:        DTAG\n"
            "descr:          Deutsche Telekom AG\n"
        )
        objects = list(iter_dump_objects(io.StringIO(text)))
        assert objects[0].asn == 3320
        assert objects[0].rir in (RIR.RIPE, RIR.APNIC, RIR.AFRINIC)

    def test_multiple_objects_blank_line_separated(self):
        text = (
            "aut-num: AS1\nas-name: ONE\n"
            "\n"
            "aut-num: AS2\nas-name: TWO\n"
        )
        objects = list(iter_dump_objects(io.StringIO(text)))
        assert [obj.asn for obj in objects] == [1, 2]

    def test_object_without_asn_skipped(self):
        text = "descr: floating text\nremarks: nothing here\n"
        assert list(iter_dump_objects(io.StringIO(text))) == []

    def test_empty_stream(self):
        assert list(iter_dump_objects(io.StringIO(""))) == []

    def test_duplicate_asns_keep_first(self):
        text = (
            "aut-num: AS1\nas-name: FIRST\n"
            "\n"
            "aut-num: AS1\nas-name: SECOND\n"
        )
        registry = read_dump(io.StringIO(text))
        assert registry.parsed(1).as_name == "FIRST"


class TestWorldScaleDump:
    def test_world_registry_round_trips(self, small_world):
        buffer = io.StringIO()
        write_dump(small_world.registry, buffer)
        restored = read_dump(io.StringIO(buffer.getvalue()))
        assert restored.asns() == small_world.registry.asns()
        # Spot check extraction equivalence on a sample.
        for asn in small_world.asns()[:20]:
            assert (
                restored.contact(asn).name
                == small_world.registry.contact(asn).name
            )
