"""Tests for the AS-to-organization inference (Cai et al. methodology)."""

import pytest

from repro.whois import As2OrgInferrer, WhoisFacts, WhoisRegistry, render
from repro.whois.records import RIR


def _register(registry, asn, name, domain=None, country="US",
              rir=RIR.ARIN):
    emails = (f"abuse@{domain}",) if domain else ()
    facts = WhoisFacts(
        asn=asn, as_name=f"AS{asn}-NAME", org_name=name,
        emails=emails, country=country,
    )
    registry.register(render(facts, rir))


class TestClusterEvidence:
    def test_same_name_clusters(self):
        registry = WhoisRegistry()
        _register(registry, 1, "Acme Networks", "acme1.net")
        _register(registry, 2, "Acme Networks", "acme2.net")
        _register(registry, 3, "Other Corp", "other.net")
        result = As2OrgInferrer().infer(registry)
        assert result.org_of(1).org_ref == result.org_of(2).org_ref
        assert result.org_of(3).org_ref != result.org_of(1).org_ref

    def test_legal_suffix_variants_cluster(self):
        registry = WhoisRegistry()
        _register(registry, 1, "Acme Networks LLC", "a.net")
        _register(registry, 2, "Acme Networks Inc", "b.net")
        result = As2OrgInferrer().infer(registry)
        assert result.org_of(1).org_ref == result.org_of(2).org_ref

    def test_shared_domain_clusters(self):
        registry = WhoisRegistry()
        _register(registry, 1, "Acme Networks", "acme.net")
        _register(registry, 2, "Acme Cloud Division", "acme.net")
        result = As2OrgInferrer().infer(registry)
        assert result.org_of(1).org_ref == result.org_of(2).org_ref

    def test_public_mail_provider_does_not_cluster(self):
        registry = WhoisRegistry()
        _register(registry, 1, "Alpha Org", "gmail.com")
        _register(registry, 2, "Beta Org", "gmail.com")
        result = As2OrgInferrer().infer(registry)
        assert result.org_of(1).org_ref != result.org_of(2).org_ref

    def test_provider_domain_spanning_many_names_filtered(self):
        registry = WhoisRegistry()
        # Five differently named customers all carry their upstream's
        # domain in abuse contacts; they must NOT merge.
        for asn, name in enumerate(
            ["Alpha Manufacturing", "Beta Clinic", "Gamma School",
             "Delta Retail", "Epsilon Farm"], start=1
        ):
            _register(registry, asn, name, "bigisp.net")
        result = As2OrgInferrer(provider_domain_threshold=4).infer(registry)
        refs = {result.org_of(asn).org_ref for asn in range(1, 6)}
        assert len(refs) == 5

    def test_country_majority(self):
        registry = WhoisRegistry()
        _register(registry, 1, "Acme Networks", "acme.net", country="DE")
        _register(registry, 2, "Acme Networks", "acme.net", country="DE")
        _register(registry, 3, "Acme Networks", "acme.net", country="US")
        result = As2OrgInferrer().infer(registry)
        assert result.country_of(1) == "DE"

    def test_siblings(self):
        registry = WhoisRegistry()
        _register(registry, 1, "Acme Networks", "acme.net")
        _register(registry, 2, "Acme Networks", "acme.net")
        result = As2OrgInferrer().infer(registry)
        assert result.siblings(1) == (2,)
        assert result.siblings(99) == ()


class TestAgainstGroundTruth:
    @pytest.fixture(scope="class")
    def inferred(self, medium_world):
        return As2OrgInferrer().infer(medium_world.registry)

    def test_every_as_mapped(self, medium_world, inferred):
        for asn in medium_world.asns():
            assert inferred.org_of(asn) is not None

    def test_pairwise_precision(self, medium_world, inferred):
        """ASes the inference groups together mostly share a true owner."""
        good = bad = 0
        for org in inferred.orgs():
            for index, first in enumerate(org.asns):
                for second in org.asns[index + 1:]:
                    same = (
                        medium_world.ases[first].org_id
                        == medium_world.ases[second].org_id
                    )
                    good += same
                    bad += not same
        assert good + bad > 0
        assert good / (good + bad) >= 0.90

    def test_pairwise_recall(self, medium_world, inferred):
        """Most true sibling pairs end up in the same cluster.

        Recall is bounded by WHOIS quality: an org-name-less record with
        no domain cannot be linked - exactly the real dataset's gap.
        """
        found = missed = 0
        for org_id in sorted(medium_world.organizations):
            asns = medium_world.asns_of_org(org_id)
            for index, first in enumerate(asns):
                for second in asns[index + 1:]:
                    same = (
                        inferred.org_of(first).org_ref
                        == inferred.org_of(second).org_ref
                    )
                    found += same
                    missed += not same
        if found + missed:
            assert found / (found + missed) >= 0.70

    def test_country_mostly_correct(self, medium_world, inferred):
        hits = total = 0
        for asn in medium_world.asns():
            inferred_country = inferred.country_of(asn)
            if inferred_country is None:
                continue
            total += 1
            hits += (
                inferred_country == medium_world.org_of_asn(asn).country
            )
        assert total > 0
        assert hits / total >= 0.95
